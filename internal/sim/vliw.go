package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"dualbank/internal/compact"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
	"dualbank/internal/opt"
)

// ctxCheckStride is how many basic-block boundaries pass between
// cancellation polls when a run carries a context. Blocks retire in at
// most a few hundred cycles, so a stride of 256 keeps the poll cost
// invisible while bounding the reaction latency to well under a
// millisecond of simulated work.
const ctxCheckStride = 256

// ctxCheck is the shared cancellation state of the run loops: a
// context's done channel polled every ctxCheckStride block boundaries.
// The zero value (no context) never fires and costs one nil check per
// block.
type ctxCheck struct {
	ctx  context.Context
	done <-chan struct{}
	tick int
}

// arm points the check at ctx for the duration of one run; a context
// that can never be cancelled leaves the check disarmed.
func (c *ctxCheck) arm(ctx context.Context) {
	c.ctx = ctx
	c.done = ctx.Done()
	c.tick = 0
}

func (c *ctxCheck) disarm() { c.ctx, c.done = nil, nil }

// poll returns the context's error once it is cancelled; at most one
// poll per ctxCheckStride calls touches the channel.
func (c *ctxCheck) poll() error {
	if c.done == nil {
		return nil
	}
	if c.tick++; c.tick < ctxCheckStride {
		return nil
	}
	c.tick = 0
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// Machine executes a scheduled VLIW program against the dual-bank
// memory system. One long instruction retires per cycle; within an
// instruction every operation reads its operands before any operation
// writes a result (this is what makes anti-dependent operations safe
// to pack together). The cycle count is the paper's performance
// metric.
type Machine struct {
	Prog *compact.Program

	// Banks holds the data-memory banks, indexed by bank index. X and Y
	// alias Banks[0] and Banks[1] — the classic pair every machine in
	// the generalized family retains.
	Banks [][]uint32
	// X and Y are the two classic data-memory banks (views of Banks).
	X, Y []uint32
	// Regs is the unified physical register file view: entries 1..32
	// are the integer file, 33..64 the float file.
	Regs [65]uint32

	// Cycles counts retired long instructions (plus stall cycles under
	// the low-order-interleaved port model).
	Cycles int64
	// OpsExecuted counts individual operations, for utilization stats.
	OpsExecuted int64
	// MemAccesses and DualMemCycles count dynamic memory traffic and
	// the cycles that issued two accesses — the exploited bandwidth.
	MemAccesses, DualMemCycles int64
	// BankConflicts counts run-time same-bank conflicts (stall cycles)
	// under the low-order-interleaved model.
	BankConflicts int64
	// MaxCycles bounds execution.
	MaxCycles int64

	// CheckPorts enables the per-cycle bank-port assertion: under the
	// banked model each single-ported bank may serve at most one access
	// per cycle. A violation is a scheduler bug.
	CheckPorts bool

	// AfterInstr, when non-nil, runs after each long instruction's
	// write phase commits — i.e. at every boundary where an interrupt
	// could be taken. Tests use it to probe the §3.2 hazard: an
	// interrupt observing a duplicated variable between the two halves
	// of its store pair. Returning an error aborts the run.
	AfterInstr func(m *Machine) error

	// Trace, when non-nil, receives one line per retired long
	// instruction: cycle, function, block, and the operations issued
	// per unit.
	Trace io.Writer

	loops []int32 // hardware loop-counter stack

	// regStamp[r] = cycle of the last write to r, for the
	// one-write-per-register-per-instruction assertion.
	regStamp [65]int64

	// Bank geometry, resolved once from Prog.Spec: bank count, ports
	// per bank, and the per-unit bank binding.
	nbanks, pports int
	bankOf         [machine.MaxUnits]int8

	cancel ctxCheck
}

// maxHWLoopDepth bounds the hardware loop stack.
const maxHWLoopDepth = 64

// NewMachine loads a scheduled program into a fresh machine: memory
// banks are zeroed and global initializers copied into their assigned
// locations (duplicated symbols into both banks).
func NewMachine(p *compact.Program) *Machine {
	spec := p.Spec.Norm()
	m := &Machine{
		Prog:       p,
		Banks:      make([][]uint32, spec.Banks),
		MaxCycles:  DefaultMaxSteps,
		CheckPorts: true,
		nbanks:     spec.Banks,
		pports:     spec.PortsPerBank,
	}
	for b := range m.Banks {
		m.Banks[b] = make([]uint32, machine.BankWords)
	}
	m.X, m.Y = m.Banks[0], m.Banks[1]
	for u := range m.bankOf {
		m.bankOf[u] = int8(spec.BankOfUnit(machine.Unit(u)).Index())
	}
	for _, s := range p.Src.Symbols() {
		for i, w := range s.Init {
			if p.Ports == machine.PortsLowOrder {
				m.storeFlat(s.Addr+i, w)
				continue
			}
			if s.Bank == machine.BankBoth {
				for b := range m.Banks {
					m.Banks[b][s.Addr+i] = w
				}
				continue
			}
			m.Banks[m.bankIdx(s.Bank)][s.Addr+i] = w
		}
	}
	return m
}

// bankIdx maps a single-bank tag to its bank index; unassigned data
// lives in bank 0 (the baseline single-bank layout).
func (m *Machine) bankIdx(b machine.Bank) int {
	if i := b.Index(); i >= 0 && i < m.nbanks {
		return i
	}
	return 0
}

// storeFlat and loadFlat implement the low-order-interleaved address
// map: bank = address modulo the bank count (even/odd on the classic
// pair), in-bank address = address divided by it.
func (m *Machine) storeFlat(addr int, w uint32) {
	m.Banks[addr%m.nbanks][addr/m.nbanks] = w
}

func (m *Machine) loadFlat(addr int) uint32 {
	return m.Banks[addr%m.nbanks][addr/m.nbanks]
}

// Run executes main() to completion.
func (m *Machine) Run() error {
	return m.RunContext(context.Background())
}

// RunContext executes main() to completion, honoring ctx: the run
// loop polls for cancellation at basic-block boundaries and returns an
// error wrapping ctx.Err() once the context is done, leaving the
// machine state wherever the simulation stopped.
func (m *Machine) RunContext(ctx context.Context) error {
	f := m.Prog.Funcs["main"]
	if f == nil {
		return fmt.Errorf("sim: no main function")
	}
	if !f.Src.Phys() {
		return fmt.Errorf("sim: program must be in physical-register form (run regalloc)")
	}
	m.cancel.arm(ctx)
	defer m.cancel.disarm()
	return m.runFunc(f)
}

// Word reads sym[idx] from the bank holding it (the bank-0 copy for
// duplicated symbols; every copy is checked to be coherent).
func (m *Machine) Word(sym *ir.Symbol, idx int) (uint32, error) {
	a := sym.Addr + idx
	if m.Prog.Ports == machine.PortsLowOrder {
		return m.loadFlat(a), nil
	}
	if sym.Bank == machine.BankBoth {
		v := m.Banks[0][a]
		for b := 1; b < m.nbanks; b++ {
			if m.Banks[b][a] != v {
				return 0, fmt.Errorf("sim: duplicated symbol %s[%d] incoherent: %s=%#x %s=%#x",
					sym, idx, machine.BankAt(0), v, machine.BankAt(b), m.Banks[b][a])
			}
		}
		return v, nil
	}
	return m.Banks[m.bankIdx(sym.Bank)][a], nil
}

// Int32 reads sym[idx] as an integer.
func (m *Machine) Int32(sym *ir.Symbol, idx int) (int32, error) {
	w, err := m.Word(sym, idx)
	return int32(w), err
}

// Float32 reads sym[idx] as a float.
func (m *Machine) Float32(sym *ir.Symbol, idx int) (float32, error) {
	w, err := m.Word(sym, idx)
	return math.Float32frombits(w), err
}

type pendingWrite struct {
	isReg bool
	reg   ir.Reg
	bank  int // bank index for memory writes
	addr  int
	val   uint32
}

// runFunc executes one function invocation and returns control when it
// hits a ret.
func (m *Machine) runFunc(f *compact.Func) error {
	b := f.Blocks[f.Src.Entry().ID]
	for {
		if err := m.cancel.poll(); err != nil {
			return fmt.Errorf("sim: %s: %w", f.Src.Name, err)
		}
		nextBlock, returned, err := m.runBlock(f, b)
		if err != nil {
			return err
		}
		if returned {
			return nil
		}
		b = f.Blocks[nextBlock.ID]
	}
}

// runBlock executes the instructions of one scheduled block. It
// returns the successor block, or returned=true for a ret.
func (m *Machine) runBlock(f *compact.Func, b *compact.Block) (next *ir.Block, returned bool, err error) {
	var writes []pendingWrite
	for _, instr := range b.Instrs {
		m.Cycles++
		if m.Cycles > m.MaxCycles {
			return nil, false, fmt.Errorf("sim: cycle limit exceeded in %s", f.Src.Name)
		}
		if m.Trace != nil {
			m.traceInstr(f, b, instr)
		}
		writes = writes[:0]
		var branchTo *ir.Block
		var doRet bool
		var callee *compact.Func
		var ports [machine.MaxBanks]int
		mem := 0

		// Read phase: evaluate every operation.
		for u, op := range instr.Slots {
			if op == nil {
				continue
			}
			m.OpsExecuted++
			switch op.Kind {
			case ir.OpBr:
				branchTo = b.Src.Succs[0]
			case ir.OpCondBr:
				if m.Regs[op.Args[0]] != 0 {
					branchTo = b.Src.Succs[0]
				} else {
					branchTo = b.Src.Succs[1]
				}
			case ir.OpRet:
				doRet = true
			case ir.OpDo:
				n := int32(m.Regs[op.Args[0]])
				if n < 1 {
					return nil, false, fmt.Errorf("sim: do with count %d in %s", n, f.Src.Name)
				}
				if len(m.loops) >= maxHWLoopDepth {
					return nil, false, fmt.Errorf("sim: loop stack overflow in %s", f.Src.Name)
				}
				m.loops = append(m.loops, n)
				branchTo = b.Src.Succs[0]
			case ir.OpEndDo:
				top := len(m.loops) - 1
				if top < 0 {
					return nil, false, fmt.Errorf("sim: enddo with empty loop stack in %s", f.Src.Name)
				}
				m.loops[top]--
				if m.loops[top] > 0 {
					branchTo = b.Src.Succs[0]
				} else {
					m.loops = m.loops[:top]
					branchTo = b.Src.Succs[1]
				}
			case ir.OpCall:
				callee = m.Prog.Funcs[op.Callee]
				if callee == nil {
					return nil, false, fmt.Errorf("sim: call to unknown %s", op.Callee)
				}
			case ir.OpLoad:
				bank, addr, err := m.resolve(op, machine.Unit(u))
				if err != nil {
					return nil, false, err
				}
				ports[bank]++
				mem++
				writes = append(writes, pendingWrite{isReg: true, reg: op.Dst, val: m.Banks[bank][addr]})
			case ir.OpStore:
				bank, addr, err := m.resolve(op, machine.Unit(u))
				if err != nil {
					return nil, false, err
				}
				ports[bank]++
				mem++
				writes = append(writes, pendingWrite{bank: bank, addr: addr, val: m.Regs[op.Args[0]]})
			default:
				v, err := m.evalALU(op)
				if err != nil {
					return nil, false, fmt.Errorf("sim %s: %s: %w", f.Src.Name, op, err)
				}
				writes = append(writes, pendingWrite{isReg: true, reg: op.Dst, val: v})
			}
		}

		if mem > 0 {
			m.MemAccesses += int64(mem)
			if mem >= 2 {
				m.DualMemCycles++
			}
		}
		switch m.Prog.Ports {
		case machine.PortsBanked:
			if m.CheckPorts {
				for b := 0; b < m.nbanks; b++ {
					if ports[b] > m.pports {
						return nil, false, fmt.Errorf("sim: bank port conflict (%s=%d accesses, %d ports) in %s",
							machine.BankAt(b), ports[b], m.pports, f.Src.Name)
					}
				}
			}
		case machine.PortsLowOrder:
			// A run-time same-bank conflict costs stall cycles: accesses
			// beyond a bank's port capacity are serialised by the memory
			// system, and the instruction retires with the slowest bank
			// (one stall per extra round). On the classic 2-bank,
			// 1-port machine this is the paper's single-cycle stall.
			stall := 0
			for b := 0; b < m.nbanks; b++ {
				if rounds := (ports[b] + m.pports - 1) / m.pports; rounds-1 > stall {
					stall = rounds - 1
				}
			}
			if stall > 0 {
				m.Cycles += int64(stall)
				m.BankConflicts += int64(stall)
				m.DualMemCycles--
			}
		}

		// Write phase: commit all results.
		for _, w := range writes {
			if w.isReg {
				if w.reg < 65 {
					if m.regStamp[w.reg] == m.Cycles {
						return nil, false, fmt.Errorf("sim: two writes to %s in one instruction", w.reg)
					}
					m.regStamp[w.reg] = m.Cycles
				}
				m.Regs[w.reg] = w.val
				continue
			}
			m.Banks[w.bank][w.addr] = w.val
		}

		if m.AfterInstr != nil {
			if err := m.AfterInstr(m); err != nil {
				return nil, false, err
			}
		}

		// Control transfer after the instruction completes.
		if callee != nil {
			if err := m.runFunc(callee); err != nil {
				return nil, false, err
			}
		}
		if doRet {
			return nil, true, nil
		}
		if branchTo != nil {
			return branchTo, false, nil
		}
	}
	return nil, false, fmt.Errorf("sim: block %s of %s has no terminator", b.Src, f.Src.Name)
}

// traceInstr emits one trace line for a retiring instruction.
func (m *Machine) traceInstr(f *compact.Func, b *compact.Block, in *compact.Instr) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8d %s b%d:", m.Cycles, f.Src.Name, b.Src.ID)
	for u, op := range in.Slots {
		if op == nil {
			continue
		}
		fmt.Fprintf(&sb, "  %s[%s]", machine.Unit(u), op)
	}
	sb.WriteByte('\n')
	io.WriteString(m.Trace, sb.String())
}

// resolve computes the bank index and in-bank word address of a memory
// access. Under the banked port model the executing unit determines
// the bank; under the dual-ported model the operation's own tag does;
// under the low-order model the address modulo the bank count does.
func (m *Machine) resolve(op *ir.Op, u machine.Unit) (int, int, error) {
	idx := 0
	if op.Idx != ir.NoReg {
		idx = int(int32(m.Regs[op.Idx]))
	}
	if idx < 0 || idx >= op.Sym.Size {
		return 0, 0, fmt.Errorf("sim: index %d out of range for %s (size %d)", idx, op.Sym, op.Sym.Size)
	}
	addr := op.Sym.Addr + idx
	switch m.Prog.Ports {
	case machine.PortsBanked:
		return int(m.bankOf[u]), addr, nil
	case machine.PortsLowOrder:
		return addr % m.nbanks, addr / m.nbanks, nil
	default: // dual-ported
		return m.bankIdx(op.Bank), addr, nil
	}
}

// evalALU computes a scalar operation's result from the current
// register file (read phase).
func (m *Machine) evalALU(op *ir.Op) (uint32, error) {
	iv := func(r ir.Reg) int32 { return int32(m.Regs[r]) }
	fv := func(r ir.Reg) float32 { return math.Float32frombits(m.Regs[r]) }
	fb := math.Float32bits

	switch op.Kind {
	case ir.OpConst:
		return uint32(int32(op.Imm)), nil
	case ir.OpFConst:
		return fb(float32(op.FImm)), nil
	case ir.OpMov:
		return m.Regs[op.Args[0]], nil
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpSetEQ, ir.OpSetNE, ir.OpSetLT,
		ir.OpSetLE, ir.OpSetGT, ir.OpSetGE:
		return uint32(opt.EvalIntBin(op.Kind, iv(op.Args[0]), iv(op.Args[1]))), nil
	case ir.OpDiv, ir.OpRem:
		if iv(op.Args[1]) == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return uint32(opt.EvalIntBin(op.Kind, iv(op.Args[0]), iv(op.Args[1]))), nil
	case ir.OpNeg:
		return uint32(-iv(op.Args[0])), nil
	case ir.OpNot:
		return uint32(^iv(op.Args[0])), nil
	case ir.OpMac:
		return uint32(iv(op.Dst) + iv(op.Args[0])*iv(op.Args[1])), nil
	case ir.OpFAdd:
		return fb(fv(op.Args[0]) + fv(op.Args[1])), nil
	case ir.OpFSub:
		return fb(fv(op.Args[0]) - fv(op.Args[1])), nil
	case ir.OpFMul:
		return fb(fv(op.Args[0]) * fv(op.Args[1])), nil
	case ir.OpFDiv:
		return fb(fv(op.Args[0]) / fv(op.Args[1])), nil
	case ir.OpFNeg:
		return fb(-fv(op.Args[0])), nil
	case ir.OpFMac:
		return fb(fv(op.Dst) + fv(op.Args[0])*fv(op.Args[1])), nil
	case ir.OpFSetEQ:
		return uint32(b2i(fv(op.Args[0]) == fv(op.Args[1]))), nil
	case ir.OpFSetNE:
		return uint32(b2i(fv(op.Args[0]) != fv(op.Args[1]))), nil
	case ir.OpFSetLT:
		return uint32(b2i(fv(op.Args[0]) < fv(op.Args[1]))), nil
	case ir.OpFSetLE:
		return uint32(b2i(fv(op.Args[0]) <= fv(op.Args[1]))), nil
	case ir.OpFSetGT:
		return uint32(b2i(fv(op.Args[0]) > fv(op.Args[1]))), nil
	case ir.OpFSetGE:
		return uint32(b2i(fv(op.Args[0]) >= fv(op.Args[1]))), nil
	case ir.OpIntToFloat:
		return fb(float32(iv(op.Args[0]))), nil
	case ir.OpFloatToInt:
		return uint32(FloatToInt(fv(op.Args[0]))), nil
	}
	return 0, fmt.Errorf("sim: cannot execute %s", op.Kind)
}
