package bench

import (
	"encoding/json"
	"os"
	"time"
)

// This file defines the machine-readable harness report written by
// `dspbench -json`: every figure/table's rows plus per-section
// wall-clock timings and the run cache's hit/miss traffic, so the
// repository's performance trajectory is trackable across commits.

// Report is the full output of one harness invocation.
type Report struct {
	// GOMAXPROCS and Parallel record the machine and pool width the
	// run used, for comparing timings across hosts.
	GOMAXPROCS int `json:"gomaxprocs"`
	Parallel   int `json:"parallel"`

	Sections []Section `json:"sections"`

	// Runs is the compile/simulate wall-clock split of every executed
	// (benchmark, mode) measurement, sorted by benchmark then mode.
	Runs []RunTiming `json:"runs,omitempty"`

	// Cache is the memoized run cache's traffic over the whole
	// invocation; TotalSeconds the end-to-end harness wall clock.
	Cache        CacheStats `json:"cache"`
	TotalSeconds float64    `json:"total_seconds"`
}

// Section is one experiment's rows and wall-clock cost. Exactly one of
// Figure, Table3 and Sweep is populated, matching the section kind.
type Section struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`

	Figure []FigureRow `json:"figure,omitempty"`
	Table3 []Table3Row `json:"table3,omitempty"`
	Sweep  []SweepRow  `json:"sweep,omitempty"`
}

// AddSection appends a timed section to the report.
func (r *Report) AddSection(s Section) { r.Sections = append(r.Sections, s) }

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Timed runs fn and returns its wall-clock duration in seconds.
func Timed(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}
