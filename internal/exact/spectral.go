package exact

// Spectral seed + ordering for components too large to close by pure
// branch-and-bound. The embedding is the Fiedler-style spectral
// relaxation of the bipartition problem, taken at the max-cut end of
// the Laplacian spectrum: for L = D - A, the quadratic form
// x'Lx = Σ w_uv (x_u - x_v)² is the (doubled, weighted) cut, so the
// dominant eigenvector of L is the unit direction of maximum cut —
// exactly the relaxed objective of minimum residual cost. Its signs
// make a strong seed partition and its magnitudes rank how firmly the
// relaxation has decided each node, which is the decision order that
// lets the branch-and-bound bound fire earliest.
//
// Determinism across architectures matters here: the committed
// BENCH_gaps.json baseline embeds node counts that depend on this
// ordering. Power iteration with a fixed start vector and a fixed
// iteration count is a closed arithmetic recipe; every product feeding
// an accumulation is wrapped in an explicit float64 conversion, which
// the Go spec defines as a rounding boundary, so no architecture may
// contract it into an FMA and perturb the low bits.

// spectralIters is the fixed power-iteration count. The ordering only
// needs the eigenvector's sign/ranking structure, not convergence to
// machine precision.
const spectralIters = 64

// spectralVector returns the (approximate, max-abs-normalised)
// dominant eigenvector of the component's Laplacian, or nil when the
// iteration degenerates (the caller then falls back to the
// weighted-degree ordering).
func spectralVector(n int, start []int32, adj []int32, w []int64) []float64 {
	if n < 2 {
		return nil
	}
	wf := make([]float64, len(w))
	for h, wt := range w {
		wf[h] = float64(wt)
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		var d float64
		for h := start[i]; h < start[i+1]; h++ {
			d += wf[h]
		}
		deg[i] = d
	}

	// Fixed asymmetric start: already orthogonal to the constant
	// vector (L's kernel) and with no two equal entries, so the
	// iterate cannot start stuck on a symmetry.
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i) - float64(n-1)/2
	}
	tmp := make([]float64, n)
	for iter := 0; iter < spectralIters; iter++ {
		// Re-centre: deflation against the kernel's constant vector,
		// guarding against drift from accumulated rounding.
		var mean float64
		for _, x := range v {
			mean += x
		}
		mean /= float64(n)
		for i := range v {
			v[i] -= mean
		}
		// tmp = L v = D v - A v.
		for i := 0; i < n; i++ {
			s := float64(deg[i] * v[i])
			for h := start[i]; h < start[i+1]; h++ {
				s -= float64(wf[h] * v[adj[h]])
			}
			tmp[i] = s
		}
		// Max-abs normalisation keeps the iterate in range without a
		// square root.
		var norm float64
		for _, x := range tmp {
			if a := abs64(x); a > norm {
				norm = a
			}
		}
		if norm == 0 {
			return nil
		}
		inv := 1 / norm
		for i := range v {
			v[i] = float64(tmp[i] * inv)
		}
	}
	return v
}
