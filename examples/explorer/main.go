// Explorer shows the compiler's data-partitioning analysis on user
// code: it compiles a MiniC program (a file argument, or a built-in
// sample reproducing Figure 4 of the paper), prints the interference
// graph with its edge weights, the greedy partition walk (the Figure 5
// trace), and the resulting bank assignment of every symbol.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dualbank"
)

// sample is the Figure 4 example program: every pairing of A, B, C, D
// may be accessed simultaneously; A and D also pair inside a loop, so
// edge (A, D) carries the higher weight.
const sample = `
float A[8] = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
float B[8] = {2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0};
float C[8];
float D[8];

void main() {
	int i = 1;
	int j = 2;
	int k = 3;
	D[i] = A[j] + B[k];
	B[i] = B[j] + D[k];
	C[i] = B[j] + C[k];
	C[i] = A[j] + C[k];
	for (i = 0; i < 5; i++) {
		C[i] = A[i] + D[i];
	}
}
`

func main() {
	dot := flag.Bool("dot", false, "emit the interference graph in Graphviz format and exit")
	flag.Parse()
	src, name := sample, "figure4"
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src, name = string(b), flag.Arg(0)
	} else {
		fmt.Println("(no file given: analysing the paper's Figure 4 example)")
	}

	c, err := dualbank.Compile(src, name, dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		log.Fatal(err)
	}
	if *dot {
		fmt.Print(c.Alloc.Graph.Dot(c.Alloc.Part))
		return
	}
	fmt.Println("Interference graph (edge weight = loop nesting depth + 1):")
	fmt.Print(c.Alloc.Graph.String())
	fmt.Println()
	fmt.Println("Greedy partition (Figure 5): cost after each move:")
	fmt.Printf("  %v\n\n", c.Alloc.Part.Trace)
	fmt.Println("Final partition:")
	fmt.Println(c.Alloc.Part)
	fmt.Println()
	fmt.Println("Bank assignment:")
	for _, g := range c.IR.Globals {
		fmt.Printf("  %-12s bank %-2s addr %4d  (%d words)\n", g.Name, g.Bank, g.Addr, g.Size)
	}
}
