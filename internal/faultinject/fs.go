package faultinject

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// FS is the slice of the filesystem the explore checkpoint store uses.
// The store's atomic-write discipline (temp file + rename) is expressed
// entirely in these operations, so wrapping them is enough to inject
// every failure mode the store must survive.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the writable temp-file handle CreateTemp returns.
type File interface {
	io.Writer
	io.Closer
	Name() string
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OSFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// FaultFS wraps an FS with an Injector: operations may stall, fail
// before reaching the inner FS, or (for writes) persist only a torn
// prefix and then fail. Reads and directory listings are never
// corrupted — torn state enters the disk only through interrupted
// writes, exactly like a crash.
type FaultFS struct {
	inner FS
	inj   *Injector
}

// NewFaultFS wraps inner with inj.
func NewFaultFS(inner FS, inj *Injector) *FaultFS {
	return &FaultFS{inner: inner, inj: inj}
}

// op applies the injector's decision for one operation: sleep the
// injected latency, then fail or proceed.
func (f *FaultFS) op(name string, write bool) error {
	d, err := f.inj.FSOp(name, write)
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.op("mkdir", true); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.op("readdir", false); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.op("readfile", false); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.op("createtemp", true); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: inner, inj: f.inj}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.op("rename", true); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.op("remove", true); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// faultFile tears writes: on an injected partial write it persists a
// strict prefix through the inner file and reports failure, modelling
// a write interrupted by a crash or a full disk.
type faultFile struct {
	inner File
	inj   *Injector
}

func (f *faultFile) Name() string { return f.inner.Name() }
func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Write(p []byte) (int, error) {
	n, torn := f.inj.WriteLen(len(p))
	if !torn {
		return f.inner.Write(p)
	}
	if n > 0 {
		// Best effort: the prefix may itself fail; the caller sees the
		// injected error either way.
		f.inner.Write(p[:n])
	}
	return n, &Error{Class: "partial-write", Op: "write"}
}
