package opt_test

import (
	"testing"

	"dualbank/internal/ir"
	"dualbank/internal/lower"
	"dualbank/internal/minic"
	"dualbank/internal/opt"
	"dualbank/internal/sim"
)

// build lowers source without optimization.
func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// optimized lowers and optimizes.
func optimized(t *testing.T, src string) *ir.Program {
	t.Helper()
	p := build(t, src)
	opt.Run(p, opt.Options{})
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify after opt: %v", err)
	}
	return p
}

// countKind counts operations of a kind across a function.
func countKind(f *ir.Func, k ir.OpKind) int {
	n := 0
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Kind == k {
				n++
			}
		}
	}
	return n
}

func countOps(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}

// runInterp executes a program and reads one global word.
func runInterp(t *testing.T, p *ir.Program, global string, idx int) int32 {
	t.Helper()
	in := sim.NewInterp(p)
	if err := in.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	g := in.GlobalByName(global)
	if g == nil {
		t.Fatalf("no global %q", global)
	}
	return in.Int32(g, idx)
}

func TestConstantFolding(t *testing.T) {
	p := optimized(t, `int r; void main() { r = 2 + 3 * 4 - (10 / 5); }`)
	f := p.Func("main")
	if countKind(f, ir.OpMul)+countKind(f, ir.OpAdd)+countKind(f, ir.OpSub)+countKind(f, ir.OpDiv) != 0 {
		t.Errorf("arithmetic not folded:\n%s", f)
	}
	if got := runInterp(t, p, "r", 0); got != 12 {
		t.Errorf("r = %d, want 12", got)
	}
}

func TestFoldingNeverDividesByZero(t *testing.T) {
	// 1/0 must not be folded at compile time; the (dead) division is
	// removed by DCE instead, and a guarded one survives to runtime.
	p := optimized(t, `
int r;
void main() {
	int z = 0;
	if (z != 0) {
		r = 1 / z;
	} else {
		r = 9;
	}
}
`)
	if got := runInterp(t, p, "r", 0); got != 9 {
		t.Errorf("r = %d, want 9", got)
	}
}

func TestDeadCodeElim(t *testing.T) {
	p := optimized(t, `
int r;
void main() {
	int unused = 40 * 40;
	int alsoUnused = unused + 2;
	r = 5;
}
`)
	f := p.Func("main")
	// Everything except the const 5, the store and the return should go.
	if n := countOps(f); n > 4 {
		t.Errorf("expected tight code after DCE, got %d ops:\n%s", n, f)
	}
}

func TestMACFusion(t *testing.T) {
	p := optimized(t, `
float a[8] = {1.0};
float b[8] = {2.0};
float r;
void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < 8; i++) {
		s += a[i] * b[i];
	}
	r = s;
}
`)
	f := p.Func("main")
	if countKind(f, ir.OpFMac) == 0 {
		t.Errorf("no fmac produced:\n%s", f)
	}
	if countKind(f, ir.OpFMul) != 0 {
		t.Errorf("fmul should be fused away:\n%s", f)
	}
}

func TestMACFusionDisabled(t *testing.T) {
	src := `
float a[8] = {1.0};
float b[8] = {2.0};
float r;
void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < 8; i++) { s += a[i] * b[i]; }
	r = s;
}
`
	p := build(t, src)
	opt.Run(p, opt.Options{NoMACFusion: true})
	if countKind(p.Func("main"), ir.OpFMac) != 0 {
		t.Error("NoMACFusion still produced a mac")
	}
}

func TestRedundantLoadElim(t *testing.T) {
	p := optimized(t, `
int g;
int r;
void main() {
	r = g + g; // one load suffices
}
`)
	f := p.Func("main")
	if n := countKind(f, ir.OpLoad); n != 1 {
		t.Errorf("got %d loads, want 1:\n%s", n, f)
	}
	// Semantics preserved.
	p2 := optimized(t, `int g = 21; int r; void main() { r = g + g; }`)
	if got := runInterp(t, p2, "r", 0); got != 42 {
		t.Errorf("r = %d, want 42", got)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	p := optimized(t, `
int g;
int r;
void main() {
	g = 7;
	r = g; // forwarded from the store
}
`)
	f := p.Func("main")
	if n := countKind(f, ir.OpLoad); n != 0 {
		t.Errorf("got %d loads, want 0 (store-to-load forwarding):\n%s", n, f)
	}
	if got := runInterp(t, p, "r", 0); got != 7 {
		t.Errorf("r = %d, want 7", got)
	}
}

func TestHardwareLoopConversion(t *testing.T) {
	p := optimized(t, `
int a[16];
void main() {
	int i;
	for (i = 0; i < 16; i++) {
		a[i] = i;
	}
}
`)
	f := p.Func("main")
	if countKind(f, ir.OpDo) != 1 || countKind(f, ir.OpEndDo) != 1 {
		t.Fatalf("counted loop not converted to do/enddo:\n%s", f)
	}
	// The compare must be gone entirely: the loop's copy is replaced by
	// the loop hardware, and the entry guard folds away because the
	// trip count is a compile-time constant.
	if countKind(f, ir.OpSetLT) != 0 {
		t.Errorf("unexpected compares:\n%s", f)
	}
	if countKind(f, ir.OpCondBr) != 0 {
		t.Errorf("constant guard not folded:\n%s", f)
	}
	// Semantics.
	in := sim.NewInterp(p)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	g := in.GlobalByName("a")
	for i := 0; i < 16; i++ {
		if in.Int32(g, i) != int32(i) {
			t.Fatalf("a[%d] = %d", i, in.Int32(g, i))
		}
	}
}

func TestHardwareLoopCountdown(t *testing.T) {
	p := optimized(t, `
int r;
void main() {
	int i;
	int s = 0;
	for (i = 10; i > 0; i--) { s += i; }
	r = s;
}
`)
	f := p.Func("main")
	if countKind(f, ir.OpEndDo) != 1 {
		t.Errorf("countdown loop not converted:\n%s", f)
	}
	if got := runInterp(t, p, "r", 0); got != 55 {
		t.Errorf("r = %d, want 55", got)
	}
}

func TestHardwareLoopFromDoWhile(t *testing.T) {
	// A counted do-while is already bottom-tested; it converts without
	// needing rotation.
	p := optimized(t, `
int r;
void main() {
	int i = 0;
	int s = 0;
	do {
		s += i;
		i++;
	} while (i < 12);
	r = s;
}
`)
	f := p.Func("main")
	if countKind(f, ir.OpEndDo) != 1 {
		t.Errorf("counted do-while not converted:\n%s", f)
	}
	if got := runInterp(t, p, "r", 0); got != 66 {
		t.Errorf("r = %d, want 66", got)
	}
}

func TestLoopWithBreakNotConverted(t *testing.T) {
	p := optimized(t, `
int r;
int a[16] = {0, 0, 0, 5};
void main() {
	int i;
	for (i = 0; i < 16; i++) {
		if (a[i] == 5) break;
	}
	r = i;
}
`)
	f := p.Func("main")
	if countKind(f, ir.OpEndDo) != 0 {
		t.Errorf("loop with early exit must not use the loop hardware:\n%s", f)
	}
	if got := runInterp(t, p, "r", 0); got != 3 {
		t.Errorf("r = %d, want 3", got)
	}
}

func TestStrengthReduction(t *testing.T) {
	p := optimized(t, `
float x[24] = {1.0};
float h[8] = {1.0};
float r;
void main() {
	int n = 3;
	int k;
	float s = 0.0;
	for (k = 0; k < 8; k++) {
		s += h[k] * x[n + k];
	}
	r = s;
}
`)
	f := p.Func("main")
	// The n+k address add must be gone from the loop body: find the
	// loop block (the one ending in enddo) and check it has no add
	// feeding a load index... the derived update remains, but as a
	// bottom-of-block add whose result is used next iteration.
	var loop *ir.Block
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Kind == ir.OpEndDo {
			loop = b
		}
	}
	if loop == nil {
		t.Fatalf("no hardware loop:\n%s", f)
	}
	// Every load's index register must not be defined earlier in the
	// same block (addresses are loop-carried, not computed in-line).
	defined := map[ir.Reg]bool{}
	for _, op := range loop.Ops {
		if op.Kind == ir.OpLoad && op.Idx != ir.NoReg && defined[op.Idx] {
			t.Errorf("load %v consumes an in-block address computation:\n%s", op, f)
		}
		if op.Dst != ir.NoReg {
			defined[op.Dst] = true
		}
	}
}

func TestLICMHoistsInvariantMul(t *testing.T) {
	p := optimized(t, `
float a[64] = {1.0};
float r;
void main() {
	int i = 3;
	int k;
	float s = 0.0;
	for (k = 0; k < 8; k++) {
		s += a[i*8 + k];
	}
	r = s;
}
`)
	f := p.Func("main")
	var loop *ir.Block
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Kind == ir.OpEndDo {
			loop = b
		}
	}
	if loop == nil {
		t.Fatalf("no hardware loop:\n%s", f)
	}
	for _, op := range loop.Ops {
		if op.Kind == ir.OpMul {
			t.Errorf("invariant multiply left in loop:\n%s", f)
		}
	}
}

func TestUnreachableBlockRemoval(t *testing.T) {
	p := optimized(t, `
int r;
void main() {
	r = 1;
	return;
	r = 2;
}
`)
	f := p.Func("main")
	if len(f.Blocks) != 1 {
		t.Errorf("unreachable code kept: %d blocks\n%s", len(f.Blocks), f)
	}
}

// TestOptPreservesSemantics runs a battery of tricky programs with and
// without optimization and requires identical results.
func TestOptPreservesSemantics(t *testing.T) {
	programs := []string{
		// Loop-carried dependences and postfix operators.
		`int r; void main() { int i = 0; int s = 0; while (i < 7) { s += i++; } r = s; }`,
		// Shadowing and nested loops.
		`int r; void main() { int s = 0; int i; int j;
		  for (i = 0; i < 4; i++) { for (j = i; j < 4; j++) { s += i*10 + j; } } r = s; }`,
		// Mixed int/float with conversions.
		`int r; void main() { float x = 0.5; int i; for (i = 0; i < 6; i++) { x = x * 1.5 + 0.25; } r = (int)(x * 100.0); }`,
		// Same-array read/write patterns.
		`int a[8] = {1,2,3,4,5,6,7,8}; int r; void main() { int i;
		  for (i = 1; i < 8; i++) { a[i] = a[i] + a[i-1]; } r = a[7]; }`,
		// Ternaries and short-circuit in loop conditions.
		`int r; void main() { int i = 0; int s = 0;
		  while (i < 10 && s < 20) { s += (i % 2 == 0) ? i : 1; i++; } r = s; }`,
		// Function calls inside loops.
		`int r; int sq(int x) { return x * x; } void main() { int i; int s = 0;
		  for (i = 0; i < 5; i++) { s += sq(i); } r = s; }`,
	}
	for i, src := range programs {
		p1 := build(t, src)
		want := runInterp(t, p1, "r", 0)
		p2 := optimized(t, src)
		got := runInterp(t, p2, "r", 0)
		if got != want {
			t.Errorf("program %d: optimized result %d, unoptimized %d\nsource: %s", i, got, want, src)
		}
	}
}
