// Package exact is the certified-optimality engine: a branch-and-bound
// exact bipartitioner over the CSR interference graph that answers the
// question the heuristic partitioners (greedy, FM, annealing) cannot —
// how far from optimal is this partition?
//
// The solver decomposes the graph into connected components (their
// bipartitions are independent, so optima add), seeds an incumbent from
// the best existing heuristic, and runs a depth-first branch-and-bound
// per component:
//
//   - Variables are decided in a static order — the spectral embedding
//     for components at or above SpectralMin nodes, weighted degree
//     descending below it — with the first node pinned to bank X
//     (the banks are symmetric, so this halves the tree).
//   - The bound on a partial assignment is the assigned-assigned
//     residual already incurred, plus for every unassigned node the
//     cheaper of its edge weights into the two assigned sides (the
//     max-weight-edge / LP-style relaxation: whichever bank the node
//     eventually picks, it pays at least the min), plus an
//     edge-disjoint triangle packing over the still-unassigned
//     subgraph (any bipartition of a triangle leaves one edge
//     internal, so each packed triangle contributes its minimum edge
//     weight). The three terms cover disjoint edge sets, so they add.
//   - The budget is a node count, not wall-clock, so a run's verdict,
//     bounds, and explored-node count are deterministic on any
//     machine at any parallelism.
//
// The outcome is a three-way verdict. Optimal: the tree was closed and
// the incumbent is provably minimal — the Certificate records the
// proof's size. Bounded: the budget ran out but the open subtrees'
// bounds prove a non-trivial interval [Lower, Upper] containing the
// optimum. Budget: the budget ran out with only the vacuous cost >= 0
// floor. In every case Upper is the cost of a concrete partition that
// started at the best heuristic and only improved, so the exact arm is
// never costlier than any heuristic.
package exact

import (
	"fmt"
	"sort"

	"dualbank/internal/core"
	"dualbank/internal/ir"
)

// DefaultNodeBudget is the branch-and-bound node budget when Options
// leaves it zero. Node counts are deterministic, so this is a
// reproducibility knob, not a timeout.
const DefaultNodeBudget = 2_000_000

// DefaultSpectralMin is the component size at which the spectral
// seed+ordering replaces the weighted-degree ordering.
const DefaultSpectralMin = 24

// triangleMaxNodes bounds the per-component triangle-packing
// precomputation (it builds an n×n edge index); components beyond it
// fall back to the min-side bound alone.
const triangleMaxNodes = 128

// Verdict classifies a Solve outcome.
type Verdict int8

const (
	// Optimal: the search closed; Upper is the proven minimum cost.
	Optimal Verdict = iota
	// Bounded: the node budget ran out, but the abandoned subtrees'
	// bounds prove the optimum lies in [Lower, Upper] with Lower > 0.
	Bounded
	// Budget: the node budget ran out with only the trivial cost >= 0
	// lower bound — the interval [0, Upper] carries no information
	// beyond the incumbent itself.
	Budget
)

func (v Verdict) String() string {
	switch v {
	case Optimal:
		return "optimal"
	case Bounded:
		return "bounded"
	}
	return "budget"
}

// MarshalText renders the verdict by name for JSON reports.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses a verdict name produced by MarshalText.
func (v *Verdict) UnmarshalText(text []byte) error {
	switch string(text) {
	case "optimal":
		*v = Optimal
	case "bounded":
		*v = Bounded
	case "budget":
		*v = Budget
	default:
		return fmt.Errorf("exact: unknown verdict %q", text)
	}
	return nil
}

// Options configures a Solve call. The zero value uses the defaults.
type Options struct {
	// NodeBudget caps branch-and-bound nodes expanded across all
	// components (0 = DefaultNodeBudget). Deterministic: equal graphs
	// and budgets always reach the same verdict and bounds.
	NodeBudget int64
	// SpectralMin is the component size at which the spectral
	// seed+ordering engages (0 = DefaultSpectralMin).
	SpectralMin int
	// AnnealSeed seeds the annealing arm of the incumbent portfolio
	// (0 = 1, the seed every caller in this repository uses).
	AnnealSeed int64
}

func (o Options) withDefaults() Options {
	if o.NodeBudget <= 0 {
		o.NodeBudget = DefaultNodeBudget
	}
	if o.SpectralMin <= 0 {
		o.SpectralMin = DefaultSpectralMin
	}
	if o.AnnealSeed == 0 {
		o.AnnealSeed = 1
	}
	return o
}

// Certificate is the proof (or proof attempt) accompanying a solved
// partition.
type Certificate struct {
	Verdict Verdict `json:"verdict"`
	// Lower and Upper bound the optimal residual cost: Upper is the
	// returned partition's cost, Lower the proven floor. Verdict
	// Optimal means Lower == Upper.
	Lower int64 `json:"lower"`
	Upper int64 `json:"upper"`
	// BBNodes is the number of branch-and-bound nodes expanded; with
	// verdict Optimal it is the size of the optimality proof.
	BBNodes int64 `json:"bb_nodes"`
	// Budget echoes the node budget the search ran under.
	Budget int64 `json:"budget"`
	// Components counts the non-trivial connected components solved;
	// Closed counts how many were proven optimal.
	Components int `json:"components"`
	Closed     int `json:"closed"`
	// Spectral reports whether any component engaged the spectral
	// seed+ordering.
	Spectral bool `json:"spectral,omitempty"`
}

// Gap returns the proven optimality-gap interval width Upper - Lower
// (0 under verdict Optimal).
func (c Certificate) Gap() int64 { return c.Upper - c.Lower }

// Result pairs the solved partition with its certificate. Part.Cost
// always equals Cert.Upper.
type Result struct {
	Part *core.Partition
	Cert Certificate
}

func init() {
	core.RegisterExactPartitioner(func(g *core.Graph) *core.Partition {
		return Solve(g, Options{}).Part
	})
}

// Solve runs the certified bipartitioner on g.
func Solve(g *core.Graph, opt Options) *Result {
	opt = opt.withDefaults()
	c := g.CSR()
	n := len(g.Nodes)

	// Incumbent portfolio: the heuristics this engine certifies, best
	// first by cost with a fixed preference order on ties. Every seed
	// is a valid partition, so Upper starts at the best heuristic and
	// can only improve.
	idx := make(map[*ir.Symbol]int32, n)
	for i, s := range g.Nodes {
		idx[s] = int32(i)
	}
	seeds := [][]bool{
		sidesOf(idx, n, g.PartitionFM()),
		sidesOf(idx, n, g.Partition()),
		sidesOf(idx, n, g.PartitionAnneal(opt.AnnealSeed)),
	}

	comps := components(c, n)
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) < len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})

	best := make([]bool, n) // isolated nodes stay in bank X
	cert := Certificate{Budget: opt.NodeBudget}
	budget := opt.NodeBudget
	closedAll := true
	for _, comp := range comps {
		s := newCompSolver(c, comp, opt)
		if s.spectral {
			cert.Spectral = true
		}
		local := make([]bool, len(comp))
		for _, seed := range seeds {
			for li, v := range comp {
				local[li] = seed[v]
			}
			s.offerLocal(local)
		}
		s.refineIncumbent()
		s.search(&budget)
		cert.Components++
		cert.BBNodes += s.nodes
		lb, closed := s.lowerBound()
		cert.Lower += lb
		cert.Upper += s.ub
		if closed {
			cert.Closed++
		} else {
			closedAll = false
		}
		for li, v := range comp {
			best[v] = s.bestY[li]
		}
	}
	switch {
	case closedAll:
		cert.Verdict = Optimal
	case cert.Lower > 0:
		cert.Verdict = Bounded
	default:
		cert.Verdict = Budget
	}

	part := g.PartitionFromSides(best)
	part.Trace = []int64{c.Total, part.Cost}
	return &Result{Part: part, Cert: cert}
}

// sidesOf converts a Partition back to a side-assignment vector.
func sidesOf(idx map[*ir.Symbol]int32, n int, p *core.Partition) []bool {
	inY := make([]bool, n)
	for _, s := range p.SetY {
		inY[idx[s]] = true
	}
	return inY
}

// components returns the connected components over nodes with at least
// one edge, each as an ascending list of global node indices, in
// discovery (lowest-first-node) order.
func components(c *core.CSR, n int) [][]int32 {
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int32
	for i := 0; i < n; i++ {
		if c.Degree(i) == 0 || comp[i] >= 0 {
			continue
		}
		id := int32(len(out))
		stack := []int32{int32(i)}
		comp[i] = id
		var nodes []int32
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nodes = append(nodes, u)
			for h := c.Start[u]; h < c.Start[u+1]; h++ {
				if v := c.Adj[h]; comp[v] < 0 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		out = append(out, nodes)
	}
	return out
}

// tri is one packed triangle: cnt counts still-unassigned corners; the
// triangle contributes minw to the bound while all three remain
// unassigned.
type tri struct {
	minw int64
	cnt  int8
}

// compSolver is the branch-and-bound state for one component, over a
// local (remapped, sorted-adjacency) CSR copy.
type compSolver struct {
	n        int
	start    []int32
	adj      []int32
	w        []int64
	order    []int32 // decision order (local ids)
	spectral bool
	seedY    []bool // spectral seed candidate, nil without spectral

	assigned []bool
	inY      []bool
	eX, eY   []int64 // unassigned node's weight into each assigned side
	fixed    int64   // residual cost among assigned nodes
	sumMin   int64   // sum over unassigned of min(eX, eY)

	tris      []tri
	triOf     [][]int32
	triActive int64

	ub      int64
	bestY   []bool
	nodes   int64
	minOpen int64 // min bound among abandoned (budget-cut) subtrees
	seeded  bool
}

const infCost = int64(1)<<62 - 1

// newCompSolver builds the local view of one component. Adjacency rows
// are sorted by neighbour id, so the search is invariant to the order
// edges were inserted into the parent graph.
func newCompSolver(c *core.CSR, comp []int32, opt Options) *compSolver {
	n := len(comp)
	local := make(map[int32]int32, n)
	for li, v := range comp {
		local[v] = int32(li)
	}
	s := &compSolver{
		n:        n,
		start:    make([]int32, n+1),
		assigned: make([]bool, n),
		inY:      make([]bool, n),
		eX:       make([]int64, n),
		eY:       make([]int64, n),
		bestY:    make([]bool, n),
		ub:       infCost,
		minOpen:  infCost,
	}
	type half struct {
		to int32
		w  int64
	}
	rows := make([][]half, n)
	for li, v := range comp {
		for h := c.Start[v]; h < c.Start[v+1]; h++ {
			rows[li] = append(rows[li], half{local[c.Adj[h]], c.W[h]})
		}
		sort.Slice(rows[li], func(a, b int) bool { return rows[li][a].to < rows[li][b].to })
	}
	for li, row := range rows {
		s.start[li+1] = s.start[li] + int32(len(row))
		for _, h := range row {
			s.adj = append(s.adj, h.to)
			s.w = append(s.w, h.w)
		}
	}

	s.order = s.ordering(opt)
	if n <= triangleMaxNodes {
		s.packTriangles()
	}
	return s
}

// ordering picks the static decision order: the spectral embedding's
// most-polarised nodes first for large components, weighted degree
// descending otherwise, ties to the lower local id.
func (s *compSolver) ordering(opt Options) []int32 {
	order := make([]int32, s.n)
	for i := range order {
		order[i] = int32(i)
	}
	if s.n >= opt.SpectralMin {
		if v := spectralVector(s.n, s.start, s.adj, s.w); v != nil {
			s.spectral = true
			s.seedY = make([]bool, s.n)
			for i := range s.seedY {
				s.seedY[i] = v[i] < 0
			}
			sort.SliceStable(order, func(a, b int) bool {
				va, vb := abs64(v[order[a]]), abs64(v[order[b]])
				if va != vb {
					return va > vb
				}
				return order[a] < order[b]
			})
			return order
		}
	}
	deg := make([]int64, s.n)
	for i := 0; i < s.n; i++ {
		for h := s.start[i]; h < s.start[i+1]; h++ {
			deg[i] += s.w[h]
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if deg[order[a]] != deg[order[b]] {
			return deg[order[a]] > deg[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// packTriangles greedily packs edge-disjoint triangles in (lowest
// corner, lowest edge) order; each contributes its minimum edge weight
// to the bound while all three corners are unassigned.
func (s *compSolver) packTriangles() {
	n := s.n
	// Dense edge index: eid[a*n+b] is the half-edge position of (a, b)
	// in a's row, or -1.
	eid := make([]int32, n*n)
	for i := range eid {
		eid[i] = -1
	}
	for a := 0; a < n; a++ {
		for h := s.start[a]; h < s.start[a+1]; h++ {
			eid[a*n+int(s.adj[h])] = h
		}
	}
	used := make([]bool, len(s.adj)) // by half-edge of the lower endpoint
	edgeUsed := func(a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		return used[eid[int(a)*n+int(b)]]
	}
	markUsed := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		used[eid[int(a)*n+int(b)]] = true
	}
	weight := func(a, b int32) int64 {
		return s.w[eid[int(a)*n+int(b)]]
	}
	s.triOf = make([][]int32, n)
	for u := int32(0); u < int32(n); u++ {
		for h := s.start[u]; h < s.start[u+1]; h++ {
			v := s.adj[h]
			if v <= u || edgeUsed(u, v) {
				continue
			}
			for h2 := s.start[v]; h2 < s.start[v+1]; h2++ {
				t := s.adj[h2]
				if t <= v || eid[int(u)*n+int(t)] < 0 {
					continue
				}
				if edgeUsed(u, v) || edgeUsed(v, t) || edgeUsed(u, t) {
					continue
				}
				minw := weight(u, v)
				if w := weight(v, t); w < minw {
					minw = w
				}
				if w := weight(u, t); w < minw {
					minw = w
				}
				markUsed(u, v)
				markUsed(v, t)
				markUsed(u, t)
				id := int32(len(s.tris))
				s.tris = append(s.tris, tri{minw: minw, cnt: 3})
				s.triOf[u] = append(s.triOf[u], id)
				s.triOf[v] = append(s.triOf[v], id)
				s.triOf[t] = append(s.triOf[t], id)
				s.triActive += minw
				break // the (u,v) edge is now used; move to the next
			}
		}
	}
	if s.triOf == nil {
		s.triOf = make([][]int32, n)
	}
}

// offerLocal proposes a local side assignment as an incumbent; the
// solver keeps it if it beats the current one.
func (s *compSolver) offerLocal(inY []bool) {
	cost := s.cutCost(inY)
	if cost < s.ub {
		s.ub = cost
		copy(s.bestY, inY)
		s.seeded = true
	}
}

// cutCost is the residual (same-side) cost of a full local assignment.
func (s *compSolver) cutCost(inY []bool) int64 {
	var cost int64
	for a := int32(0); a < int32(s.n); a++ {
		for h := s.start[a]; h < s.start[a+1]; h++ {
			if b := s.adj[h]; b > a && inY[b] == inY[a] {
				cost += s.w[h]
			}
		}
	}
	return cost
}

// refineIncumbent hill-climbs the incumbent with single-node flips
// (best strict improvement, ties to the lower id) until it is locally
// optimal — a cheap polish that tightens the initial Upper bound.
func (s *compSolver) refineIncumbent() {
	if !s.seeded {
		return
	}
	cur := append([]bool(nil), s.bestY...)
	cost := s.ub
	for {
		best, bestGain := int32(-1), int64(0)
		for i := int32(0); i < int32(s.n); i++ {
			var same, cross int64
			for h := s.start[i]; h < s.start[i+1]; h++ {
				if cur[s.adj[h]] == cur[i] {
					same += s.w[h]
				} else {
					cross += s.w[h]
				}
			}
			if gain := same - cross; gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		cur[best] = !cur[best]
		cost -= bestGain
	}
	if cost < s.ub {
		s.ub = cost
		copy(s.bestY, cur)
	}
}

// search runs the depth-first branch-and-bound under the shared budget.
func (s *compSolver) search(budget *int64) {
	if s.spectral && s.seedY != nil {
		s.offerLocal(s.seedY)
		s.refineIncumbent()
	}
	s.dfs(0, budget)
}

func (s *compSolver) bound() int64 {
	return s.fixed + s.sumMin + s.triActive
}

func (s *compSolver) dfs(k int, budget *int64) {
	b := s.bound()
	if b >= s.ub {
		return // this subtree cannot strictly improve the incumbent
	}
	if k == s.n {
		s.ub = s.fixed
		copy(s.bestY, s.inY)
		return
	}
	if *budget <= 0 {
		// Abandoned, not pruned: its bound caps what the subtree could
		// still prove, so it joins the residual lower bound.
		if b < s.minOpen {
			s.minOpen = b
		}
		return
	}
	*budget--
	s.nodes++

	v := s.order[k]
	firstY := s.eY[v] < s.eX[v] // cheaper side first
	for pass := 0; pass < 2; pass++ {
		toY := firstY == (pass == 0)
		if k == 0 && toY {
			continue // symmetry: the first node is pinned to bank X
		}
		s.assign(v, toY)
		s.dfs(k+1, budget)
		s.unassign(v, toY)
	}
}

func (s *compSolver) assign(v int32, toY bool) {
	s.assigned[v] = true
	s.inY[v] = toY
	s.sumMin -= min64(s.eX[v], s.eY[v])
	if toY {
		s.fixed += s.eY[v]
	} else {
		s.fixed += s.eX[v]
	}
	for h := s.start[v]; h < s.start[v+1]; h++ {
		u := s.adj[h]
		if s.assigned[u] {
			continue
		}
		old := min64(s.eX[u], s.eY[u])
		if toY {
			s.eY[u] += s.w[h]
		} else {
			s.eX[u] += s.w[h]
		}
		s.sumMin += min64(s.eX[u], s.eY[u]) - old
	}
	for _, t := range s.triOf[v] {
		tr := &s.tris[t]
		tr.cnt--
		if tr.cnt == 2 {
			s.triActive -= tr.minw
		}
	}
}

func (s *compSolver) unassign(v int32, toY bool) {
	for _, t := range s.triOf[v] {
		tr := &s.tris[t]
		if tr.cnt == 2 {
			s.triActive += tr.minw
		}
		tr.cnt++
	}
	for h := s.start[v]; h < s.start[v+1]; h++ {
		u := s.adj[h]
		if s.assigned[u] {
			continue
		}
		old := min64(s.eX[u], s.eY[u])
		if toY {
			s.eY[u] -= s.w[h]
		} else {
			s.eX[u] -= s.w[h]
		}
		s.sumMin += min64(s.eX[u], s.eY[u]) - old
	}
	if toY {
		s.fixed -= s.eY[v]
	} else {
		s.fixed -= s.eX[v]
	}
	s.sumMin += min64(s.eX[v], s.eY[v])
	s.assigned[v] = false
}

// lowerBound returns the component's proven floor and whether the
// search closed (proved its incumbent optimal). A budget cut whose
// abandoned bounds all reached the incumbent still closes the search.
func (s *compSolver) lowerBound() (int64, bool) {
	if s.minOpen >= s.ub {
		return s.ub, true
	}
	return s.minOpen, false
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
