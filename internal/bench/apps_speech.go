package bench

import (
	"fmt"
	"math"
	"strings"
)

// This file implements the speech-processing applications of Table 2:
// adpcm, lpc, and spectral.
//
// lpc is the paper's flagship duplication case: its hot loop is the
// Figure 6 autocorrelation R[m] += s[n]*s[n+m], whose two simultaneous
// accesses to the same array defeat any partitioning; only duplication
// (or dual-ported memory) recovers the parallelism. spectral windows
// overlapping segments into a scratch frame and runs an in-place FFT
// over it, so its frame arrays are also duplication candidates — but
// the butterfly stores are doubled by duplication, which is what makes
// Dup underperform CB for this program in Figure 8.

// ADPCM builds the IMA-style adaptive differential PCM speech encoder.
func ADPCM() Program {
	const n = 1024
	rng := newPRNG(42)
	pcm := make([]int32, n)
	// A wandering waveform with speech-like local correlation.
	v := int32(0)
	for i := range pcm {
		v += rng.i32n(1200) - 600
		if v > 30000 {
			v = 30000
		}
		if v < -30000 {
			v = -30000
		}
		pcm[i] = v
	}
	step := stepTable()
	idxTab := []int32{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

	// Go reference.
	want := make([]int32, n)
	valpred, index := int32(0), int32(0)
	for i := 0; i < n; i++ {
		diff := pcm[i] - valpred
		sign := int32(0)
		if diff < 0 {
			sign = 8
			diff = -diff
		}
		st := step[index]
		delta := int32(0)
		vpdiff := st >> 3
		if diff >= st {
			delta = 4
			diff -= st
			vpdiff += st
		}
		st >>= 1
		if diff >= st {
			delta |= 2
			diff -= st
			vpdiff += st
		}
		st >>= 1
		if diff >= st {
			delta |= 1
			vpdiff += st
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		if valpred > 32767 {
			valpred = 32767
		}
		if valpred < -32768 {
			valpred = -32768
		}
		index += idxTab[delta]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		want[i] = delta | sign
	}

	var sb strings.Builder
	sb.WriteString(intsDecl("pcm", pcm))
	sb.WriteString(intsDecl("step", step))
	sb.WriteString(intsDecl("idxtab", idxTab))
	fmt.Fprintf(&sb, "int code[%d];\n", n)
	fmt.Fprintf(&sb, `
void main() {
	int valpred = 0;
	int index = 0;
	int i;
	for (i = 0; i < %d; i++) {
		int diff = pcm[i] - valpred;
		int sign = 0;
		if (diff < 0) {
			sign = 8;
			diff = -diff;
		}
		int st = step[index];
		int delta = 0;
		int vpdiff = st >> 3;
		if (diff >= st) {
			delta = 4;
			diff -= st;
			vpdiff += st;
		}
		st = st >> 1;
		if (diff >= st) {
			delta |= 2;
			diff -= st;
			vpdiff += st;
		}
		st = st >> 1;
		if (diff >= st) {
			delta |= 1;
			vpdiff += st;
		}
		if (sign) {
			valpred -= vpdiff;
		} else {
			valpred += vpdiff;
		}
		if (valpred > 32767) valpred = 32767;
		if (valpred < -32768) valpred = -32768;
		index += idxtab[delta];
		if (index < 0) index = 0;
		if (index > 88) index = 88;
		code[i] = delta | sign;
	}
}
`, n)

	return Program{
		Name:   "adpcm",
		Desc:   "Adaptive, differential, pulse-code-modulation speech encoder",
		Kind:   Application,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkI32s(r, "code", want) },
	}
}

func stepTable() []int32 {
	return []int32{
		7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
		41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
		190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
		724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
		2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
		6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
		16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
	}
}

// LPC builds the linear-predictive-coding speech encoder: the input
// signal is processed in frames, each framed into a working buffer,
// preemphasised, Hamming-windowed, autocorrelated (the Figure 6 loop),
// and fitted with prediction coefficients by Levinson-Durbin
// recursion. The frame buffer's same-array autocorrelation accesses
// make it the duplication candidate that gives lpc its Figure 8
// signature.
func LPC() Program {
	const (
		frame = 160
		nfrm  = 4
		n     = frame * nfrm
		order = 10
	)
	rng := newPRNG(7)
	sig := randFloats(rng, n)
	win := make([]float32, frame)
	for i := range win {
		win[i] = float32(0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(frame-1)))
	}

	// Go reference.
	wantA := make([]float32, nfrm*(order+1))
	wantR := make([]float32, nfrm*(order+1))
	s := make([]float32, frame)
	for f := 0; f < nfrm; f++ {
		for i := 0; i < frame; i++ {
			s[i] = sig[f*frame+i]
		}
		for i := frame - 1; i > 0; i-- {
			s[i] = s[i] - 0.95*s[i-1]
		}
		for i := 0; i < frame; i++ {
			s[i] = s[i] * win[i]
		}
		R := make([]float32, order+1)
		for m := 0; m <= order; m++ {
			var acc float32
			for i := 0; i < frame-m; i++ {
				acc += s[i] * s[i+m]
			}
			R[m] = acc
		}
		a := make([]float32, order+1)
		an := make([]float32, order+1)
		E := R[0]
		for i := 1; i <= order; i++ {
			acc := R[i]
			for j := 1; j < i; j++ {
				acc -= a[j] * R[i-j]
			}
			k := acc / E
			for j := 1; j < i; j++ {
				an[j] = a[j] - k*a[i-j]
			}
			for j := 1; j < i; j++ {
				a[j] = an[j]
			}
			a[i] = k
			E = E * (1 - k*k)
		}
		copy(wantA[f*(order+1):], a)
		copy(wantR[f*(order+1):], R)
	}

	var sb strings.Builder
	sb.WriteString(floatsDecl("in", sig))
	sb.WriteString(floatsDecl("win", win))
	fmt.Fprintf(&sb, "float s[%d];\nfloat R[%d];\nfloat a[%d];\nfloat an[%d];\n",
		frame, order+1, order+1, order+1)
	fmt.Fprintf(&sb, "float coeff[%d][%d];\nfloat corr[%d][%d];\n",
		nfrm, order+1, nfrm, order+1)
	fmt.Fprintf(&sb, `
void main() {
	int f;
	int i;
	int j;
	int m;
	for (f = 0; f < %[3]d; f++) {
		int off = f * %[1]d;
		// Frame the raw input into the working buffer.
		for (i = 0; i < %[1]d; i++) {
			s[i] = in[off + i];
		}
		// Preemphasis (in place, backwards).
		for (i = %[1]d - 1; i > 0; i--) {
			s[i] = s[i] - 0.95 * s[i-1];
		}
		// Hamming window.
		for (i = 0; i < %[1]d; i++) {
			s[i] = s[i] * win[i];
		}
		// Autocorrelation (the Figure 6 loop).
		for (m = 0; m <= %[2]d; m++) {
			float acc = 0.0;
			int lim = %[1]d - m;
			for (i = 0; i < lim; i++) {
				acc += s[i] * s[i + m];
			}
			R[m] = acc;
		}
		// Levinson-Durbin recursion.
		for (i = 0; i <= %[2]d; i++) {
			a[i] = 0.0;
		}
		float E = R[0];
		for (i = 1; i <= %[2]d; i++) {
			float acc = R[i];
			for (j = 1; j < i; j++) {
				acc -= a[j] * R[i - j];
			}
			float k = acc / E;
			for (j = 1; j < i; j++) {
				an[j] = a[j] - k * a[i - j];
			}
			for (j = 1; j < i; j++) {
				a[j] = an[j];
			}
			a[i] = k;
			E = E * (1.0 - k * k);
		}
		for (i = 0; i <= %[2]d; i++) {
			coeff[f][i] = a[i];
			corr[f][i] = R[i];
		}
	}
}
`, frame, order, nfrm)

	return Program{
		Name:   "lpc",
		Desc:   "Linear-predictive-coding speech encoder (framing, preemphasis, windowing, autocorrelation, Levinson-Durbin)",
		Kind:   Application,
		Source: sb.String(),
		Check: func(r Reader) error {
			if err := checkF32s(r, "corr", wantR, 1e-3); err != nil {
				return err
			}
			return checkF32s(r, "coeff", wantA, 1e-2)
		},
	}
}

// Spectral builds the spectral-analysis application: periodogram
// averaging over overlapping windowed segments, with an in-place
// radix-2 FFT per segment.
func Spectral() Program {
	const (
		frame = 128
		logF  = 7
		hop   = 64
		nseg  = 7
		nsig  = hop*(nseg-1) + frame // 512
	)
	rng := newPRNG(99)
	sig := randFloats(rng, nsig)
	win := make([]float32, frame)
	for i := range win {
		win[i] = float32(0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(frame-1)))
	}
	wr := make([]float32, frame/2)
	wi := make([]float32, frame/2)
	for i := 0; i < frame/2; i++ {
		ang := -2 * math.Pi * float64(i) / float64(frame)
		wr[i] = float32(math.Cos(ang))
		wi[i] = float32(math.Sin(ang))
	}

	// Go reference.
	psd := make([]float32, frame/2)
	fr := make([]float32, frame)
	fi := make([]float32, frame)
	for seg := 0; seg < nseg; seg++ {
		for i := 0; i < frame; i++ {
			fr[i] = sig[seg*hop+i] * win[i]
			fi[i] = 0
		}
		fftRef(fr, fi, wr, wi, frame, logF)
		for b := 0; b < frame/2; b++ {
			psd[b] += fr[b]*fr[b] + fi[b]*fi[b]
		}
	}

	var sb strings.Builder
	sb.WriteString(floatsDecl("sig", sig))
	sb.WriteString(floatsDecl("win", win))
	sb.WriteString(floatsDecl("wr", wr))
	sb.WriteString(floatsDecl("wi", wi))
	fmt.Fprintf(&sb, "float fr[%d];\nfloat fi[%d];\nfloat psd[%d];\n", frame, frame, frame/2)
	fmt.Fprintf(&sb, `
void fft() {
	int i;
	int s;
	for (i = 0; i < %[1]d; i++) {
		int r = 0;
		int v = i;
		for (s = 0; s < %[2]d; s++) {
			r = (r << 1) | (v & 1);
			v = v >> 1;
		}
		if (r > i) {
			float tr = fr[i];
			float ti = fi[i];
			fr[i] = fr[r];
			fi[i] = fi[r];
			fr[r] = tr;
			fi[r] = ti;
		}
	}
	int le = 1;
	for (s = 0; s < %[2]d; s++) {
		int le2 = le * 2;
		int step = %[1]d / le2;
		int j;
		for (j = 0; j < le; j++) {
			float ur = wr[j * step];
			float ui = wi[j * step];
			int c;
			int nb = %[1]d / le2;
			int idx = j;
			for (c = 0; c < nb; c++) {
				int ip = idx + le;
				float tr = fr[ip] * ur - fi[ip] * ui;
				float ti = fr[ip] * ui + fi[ip] * ur;
				fr[ip] = fr[idx] - tr;
				fi[ip] = fi[idx] - ti;
				fr[idx] = fr[idx] + tr;
				fi[idx] = fi[idx] + ti;
				idx = idx + le2;
			}
		}
		le = le2;
	}
}

void main() {
	int seg;
	int i;
	int b;
	for (seg = 0; seg < %[3]d; seg++) {
		int off = seg * %[4]d;
		for (i = 0; i < %[1]d; i++) {
			fr[i] = sig[off + i] * win[i];
			fi[i] = 0.0;
		}
		fft();
		for (b = 0; b < %[5]d; b++) {
			psd[b] += fr[b] * fr[b] + fi[b] * fi[b];
		}
	}
}
`, frame, logF, nseg, hop, frame/2)

	return Program{
		Name:   "spectral",
		Desc:   "Spectral analysis using periodogram averaging with an in-place FFT",
		Kind:   Application,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkF32s(r, "psd", psd, 5e-3) },
	}
}
