package pipeline

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/sim"
)

// firSource builds the Figure 1 FIR benchmark with embedded data.
func firSource(n int) (string, float32) {
	var a, b strings.Builder
	var as, bs []float32
	for i := 0; i < n; i++ {
		av := float32(i%7) * 0.25
		bv := float32((i%5)-2) * 0.5
		as = append(as, av)
		bs = append(bs, bv)
		if i > 0 {
			a.WriteString(", ")
			b.WriteString(", ")
		}
		fmt.Fprintf(&a, "%g", av)
		fmt.Fprintf(&b, "%g", bv)
	}
	var want float32
	for i := 0; i < n; i++ {
		want += as[i] * bs[i]
	}
	src := fmt.Sprintf(`
float A[%d] = {%s};
float B[%d] = {%s};
float sum;

void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < %d; i++) {
		s += A[i] * B[i];
	}
	sum = s;
}
`, n, a.String(), n, b.String(), n)
	return src, want
}

var allModes = []alloc.Mode{
	alloc.SingleBank, alloc.CB, alloc.CBProfiled, alloc.CBDup,
	alloc.FullDup, alloc.Ideal,
}

func TestFIREndToEnd(t *testing.T) {
	src, want := firSource(64)
	cycles := make(map[alloc.Mode]int64)
	for _, mode := range allModes {
		c, err := Compile(src, "fir", Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: compile: %v", mode, err)
		}
		if err := compact.Validate(c.Sched); err != nil {
			t.Fatalf("%v: schedule: %v", mode, err)
		}
		m, err := c.Run()
		if err != nil {
			t.Fatalf("%v: run: %v", mode, err)
		}
		got, err := m.Float32(c.Global("sum"), 0)
		if err != nil {
			t.Fatalf("%v: read sum: %v", mode, err)
		}
		if math.Abs(float64(got-want)) > 1e-3 {
			t.Errorf("%v: sum = %g, want %g", mode, got, want)
		}
		cycles[mode] = m.Cycles
		t.Logf("%-12v cycles=%d instrs=%d", mode, m.Cycles, c.Sched.StaticInstrs())
	}
	if cycles[alloc.CB] >= cycles[alloc.SingleBank] {
		t.Errorf("CB (%d cycles) not faster than single-bank (%d)", cycles[alloc.CB], cycles[alloc.SingleBank])
	}
	if cycles[alloc.Ideal] > cycles[alloc.CB] {
		t.Errorf("Ideal (%d cycles) slower than CB (%d)", cycles[alloc.Ideal], cycles[alloc.CB])
	}
}

func TestFIRInterpMatchesMachine(t *testing.T) {
	src, want := firSource(32)
	c, err := Compile(src, "fir", Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	in := sim.NewInterp(c.IR)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	got := in.Float32(c.Global("sum"), 0)
	if math.Abs(float64(got-want)) > 1e-3 {
		t.Errorf("interp sum = %g, want %g", got, want)
	}
}
