package bench

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/faultinject"
)

// TestCancelStormSingleRecompute is the regression test for the
// single-flight take-over path: when the computing request is
// cancelled mid-measurement, exactly ONE live waiter recomputes —
// dead-context waiters must neither take over nor trigger extra
// compile invocations, and every live waiter coalesces onto the
// recomputation.
func TestCancelStormSingleRecompute(t *testing.T) {
	h := NewHarness(1)
	var computes atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	h.Intercept = func(ctx context.Context, p Program, mode alloc.Mode) error {
		computes.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
		return ctx.Err()
	}

	prog := FIR(8, 4)
	mode := alloc.SingleBank

	// The doomed computer: enters Intercept, blocks on gate.
	ctx1, cancel1 := context.WithCancel(context.Background())
	computerErr := make(chan error, 1)
	go func() {
		_, _, err := h.RunCtx(ctx1, prog, mode, RunOptions{})
		computerErr <- err
	}()
	<-started

	// A storm of waiters piles onto the in-flight entry: 8 live ones
	// that must all succeed, and 8 whose contexts die while waiting —
	// those must fail without ever starting a computation.
	var live sync.WaitGroup
	liveErrs := make([]error, 8)
	for i := 0; i < 8; i++ {
		live.Add(1)
		go func(i int) {
			defer live.Done()
			_, _, liveErrs[i] = h.RunCtx(context.Background(), prog, mode, RunOptions{})
		}(i)
	}
	deadCtx, cancelDead := context.WithCancel(context.Background())
	var dead sync.WaitGroup
	deadErrs := make([]error, 8)
	for i := 0; i < 8; i++ {
		dead.Add(1)
		go func(i int) {
			defer dead.Done()
			_, _, deadErrs[i] = h.RunCtx(deadCtx, prog, mode, RunOptions{})
		}(i)
	}

	// Kill the dead waiters' contexts, then the computer's, then let
	// every blocked Intercept return: the computer reports Canceled and
	// evicts its entry; exactly one live waiter takes over and — its
	// context fine, the gate now open — computes for real.
	cancelDead()
	dead.Wait()
	cancel1()
	close(gate)

	if err := <-computerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled computer returned %v, want context.Canceled", err)
	}
	live.Wait()
	for i, err := range liveErrs {
		if err != nil {
			t.Errorf("live waiter %d failed: %v", i, err)
		}
	}
	for i, err := range deadErrs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("dead waiter %d returned %v, want context.Canceled", i, err)
		}
	}
	// Two compile invocations total: the cancelled original and the one
	// successful take-over. Any more means a dead waiter took over or
	// the live waiters failed to coalesce.
	if got := computes.Load(); got != 2 {
		t.Errorf("%d compute invocations under cancel storm, want exactly 2", got)
	}
	if st := h.Stats(); st.Misses != 2 {
		t.Errorf("cache recorded %d misses, want 2 (stats %+v)", st.Misses, st)
	}
	// The successful recomputation must now be cached.
	if _, cached, err := h.RunCtx(context.Background(), prog, mode, RunOptions{}); err != nil || !cached {
		t.Errorf("post-storm request: cached=%v err=%v, want a clean hit", cached, err)
	}
}

// TestTransientErrorsNotCached: an injected transient fault must fail
// the requesting measurement but never poison the cache — the next
// request retries and, once the fault clears, the result is memoized
// normally.
func TestTransientErrorsNotCached(t *testing.T) {
	h := NewHarness(1)
	inj := faultinject.New(faultinject.Profile{ComputeError: 1})
	h.Intercept = func(ctx context.Context, p Program, mode alloc.Mode) error {
		return inj.Compute("measure")
	}
	prog := FIR(8, 4)

	for i := 0; i < 3; i++ {
		_, cached, err := h.RunCtx(context.Background(), prog, alloc.SingleBank, RunOptions{})
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want injected fault", i, err)
		}
		if cached {
			t.Fatalf("attempt %d: transient failure served from cache", i)
		}
	}
	if st := h.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats after 3 transient failures: %+v, want 3 misses 0 hits", h.Stats())
	}

	// Fault clears; the next request computes and is cached.
	h.Intercept = nil
	if _, cached, err := h.RunCtx(context.Background(), prog, alloc.SingleBank, RunOptions{}); err != nil || cached {
		t.Fatalf("post-fault compute: cached=%v err=%v", cached, err)
	}
	if _, cached, err := h.RunCtx(context.Background(), prog, alloc.SingleBank, RunOptions{}); err != nil || !cached {
		t.Fatalf("post-fault hit: cached=%v err=%v", cached, err)
	}
	if st := h.Stats(); st.Misses != 4 || st.Hits != 1 {
		t.Fatalf("final stats %+v, want 4 misses 1 hit", st)
	}
}

// TestNonTransientErrorsAreCached pins the complement: a permanent
// failure (e.g. a benchmark that cannot compile) stays cached so the
// harness does not grind on a hopeless configuration.
func TestNonTransientErrorsAreCached(t *testing.T) {
	h := NewHarness(1)
	permanent := errors.New("permanent failure")
	var calls atomic.Int64
	h.Intercept = func(ctx context.Context, p Program, mode alloc.Mode) error {
		calls.Add(1)
		return permanent
	}
	prog := FIR(8, 4)
	if _, _, err := h.RunCtx(context.Background(), prog, alloc.SingleBank, RunOptions{}); !errors.Is(err, permanent) {
		t.Fatalf("first request: %v", err)
	}
	if _, cached, err := h.RunCtx(context.Background(), prog, alloc.SingleBank, RunOptions{}); !errors.Is(err, permanent) || !cached {
		t.Fatalf("second request: cached=%v err=%v, want cached permanent error", cached, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d compute invocations for a permanent failure, want 1", calls.Load())
	}
}
