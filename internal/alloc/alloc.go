// Package alloc implements the data allocation pass of the paper's
// back-end (§3). It runs after register allocation and before the
// operation-compaction pass, and decides where every variable and array
// lives:
//
//   - Under CB partitioning it builds the interference graph, runs the
//     greedy min-cost bipartition, and assigns each symbol to bank X or
//     bank Y. Callee-save slots are assigned to alternating banks
//     mechanically, outside the graph, exactly as §3.1 prescribes.
//   - Under partial duplication it additionally replicates every array
//     the graph marked for duplication into both banks and inserts the
//     coherence store that keeps the second copy current after each
//     store to the first.
//   - Full duplication replicates everything; the single-bank baseline
//     and the Ideal dual-ported configuration disable partitioning.
//
// Finally the pass assigns word addresses. Duplicated symbols are laid
// out first, at equal addresses in both banks, so one address (or one
// frame offset) reaches either copy (§3.2); bank-private globals and
// the static stack frames follow. Every memory operation is then
// tagged with the bank holding its data, the information the
// compaction pass uses to pick memory units.
package alloc

import (
	"fmt"

	"dualbank/internal/core"
	_ "dualbank/internal/exact" // registers the MethodExact backend
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// Mode selects the data-allocation strategy; these are the experiment
// arms of Figures 7–8 and Table 3.
type Mode int8

const (
	// SingleBank disables the allocation pass: all data in bank X.
	// This is the paper's unoptimized reference.
	SingleBank Mode = iota
	// CB is compaction-based partitioning with static (loop-depth)
	// edge weights.
	CB
	// CBProfiled is CB with profile-derived edge weights (Pr).
	CBProfiled
	// CBDup is CB plus partial data duplication (Dup).
	CBDup
	// FullDup duplicates every variable and array in both banks.
	FullDup
	// Ideal models dual-ported memory cells: placement is irrelevant
	// because either memory unit reaches either bank.
	Ideal
	// LowOrder models the alternative memory organisation the paper
	// argues against: consecutive addresses interleave across the
	// banks, the compiler issues accesses pairwise and the hardware
	// stalls a cycle on a run-time bank conflict. Used by the
	// organisation-comparison study.
	LowOrder
)

var modeNames = map[Mode]string{
	SingleBank: "single-bank", CB: "CB", CBProfiled: "Pr",
	CBDup: "Dup", FullDup: "full-dup", Ideal: "Ideal",
	LowOrder: "low-order",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int8(m))
}

// MarshalText renders the mode by name, so JSON maps keyed by Mode use
// "CB", "Dup", ... rather than raw integers.
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText parses a mode name produced by MarshalText.
func (m *Mode) UnmarshalText(text []byte) error {
	for mode, name := range modeNames {
		if name == string(text) {
			*m = mode
			return nil
		}
	}
	return fmt.Errorf("alloc: unknown mode %q", text)
}

// Partitioned reports whether the mode runs the CB partitioner.
func (m Mode) Partitioned() bool { return m == CB || m == CBProfiled || m == CBDup }

// Options configures the pass.
type Options struct {
	Mode Mode
	// InterruptSafe brackets each duplicated-store pair so both copies
	// commit in one instruction (the store-lock/store-unlock discipline
	// discussed in §3.2). Off by default, as in the paper's evaluation.
	InterruptSafe bool
	// DupFilter, when non-nil, selects exactly which partitioned
	// arrays CBDup mode duplicates: every array node the filter
	// accepts is replicated, whether or not the interference analysis
	// marked it. When nil, duplication follows the paper's policy and
	// replicates the marked arrays only. The selective-duplication
	// refinement of §5 and the design-space explorer both drive this.
	DupFilter func(*ir.Symbol) bool
	// Method selects the graph-partitioning algorithm (greedy by
	// default; Kernighan-Lin refinement, simulated annealing, and the
	// gain-bucket FM partitioner are available for the
	// algorithm-comparison study).
	Method core.Method
	// FMPasses bounds the FM partitioner's refinement passes: 0 means
	// the library default, negative stops after the greedy-equivalent
	// first phase. Ignored unless Method is core.MethodFM.
	FMPasses int
	// Profiled forces profile-derived interference-edge weights for
	// any partitioned mode, decoupling the weighting policy from the
	// CBProfiled mode so the explorer can combine profiling with
	// duplication. The caller must have run a profiling pass first
	// (the pipeline does when asked).
	Profiled bool
	// Scanner, when non-nil, supplies reusable scratch storage for
	// interference-graph construction, so pipelines that allocate many
	// programs back to back avoid rebuilding it each time.
	Scanner *core.Scanner
	// SwapBanks mirrors the whole assignment: every symbol the pass
	// would place in bank X lands in bank Y and vice versa, including
	// the save-slot alternation start and the coherence-store pair
	// order. The banks are architecturally identical, so a swapped
	// allocation must schedule and simulate to the same cycle count —
	// the metamorphic test suite relies on this. Modes that do not
	// steer banks (LowOrder, FullDup, Ideal ports) are unaffected.
	// It is sugar for BankPerm = {1, 0}.
	SwapBanks bool
	// Spec is the bank/port geometry. The zero value is the classic
	// 2-bank, 1-port machine, which takes the historical allocation
	// path bit for bit; other specs run the k-way generalization.
	// Non-default specs support the placement-steered modes only
	// (SingleBank, CB, CBProfiled, CBDup, FullDup) — Ideal and
	// LowOrder are defined on the paper's 2-bank machine.
	Spec machine.BankSpec
	// BankPerm generalizes SwapBanks to an arbitrary permutation of
	// the spec's banks: a symbol the pass would place in bank b lands
	// in bank BankPerm[b], including the save-slot rotation and the
	// coherence-store order. Nil means identity. The banks are
	// architecturally identical, so a permuted allocation schedules
	// and simulates to the same cycle count — the k-ary metamorphic
	// invariance the corpus gauntlet asserts.
	BankPerm []int
}

// Result describes the allocation for reporting and the cost model.
type Result struct {
	Mode  Mode
	Graph *core.Graph     // nil unless the mode partitions
	Part  *core.Partition // nil unless the mode partitions (2-bank runs)
	// PartK is the k-way partition for non-default specs (nil on the
	// default machine, where Part carries the bipartition).
	PartK *core.KPartition

	Duplicated []*ir.Symbol
	DupStores  int // coherence stores inserted

	// Word accounting for the cost model: the shared duplicated region
	// (present in all banks), per-bank globals, and per-bank static
	// stack (locals, parameter slots, spills, save slots).
	DupWords         int
	GlobalX, GlobalY int
	StackX, StackY   int
	// GlobalBank and StackBank are the per-bank accounts for banks
	// beyond the classic pair; nil on the default machine. When set,
	// their first two entries equal GlobalX/GlobalY and StackX/StackY.
	GlobalBank []int
	StackBank  []int

	Ports machine.PortModel
	// Spec echoes the bank/port geometry the allocation ran under.
	Spec machine.BankSpec
}

// Run performs data allocation on p according to opts. It mutates
// symbol bank/address assignments and memory-op tags, and inserts
// coherence stores for duplicated data.
func Run(p *ir.Program, opts Options) (*Result, error) {
	if err := opts.Spec.Validate(); err != nil {
		return nil, err
	}
	if !opts.Spec.IsDefault() {
		return runK(p, opts)
	}
	// Default 2-bank machine: fold BankPerm into SwapBanks and take the
	// historical path bit for bit.
	if perm := opts.BankPerm; perm != nil {
		if len(perm) != 2 || perm[0] == perm[1] || perm[0] < 0 || perm[0] > 1 {
			return nil, fmt.Errorf("alloc: bank permutation %v invalid for 2 banks", perm)
		}
		opts.SwapBanks = perm[0] == 1 // an explicit permutation wins
	}
	res := &Result{Mode: opts.Mode, Ports: machine.PortsBanked, Spec: opts.Spec}

	bankX, bankY := machine.BankX, machine.BankY
	if opts.SwapBanks {
		bankX, bankY = bankY, bankX
	}

	switch opts.Mode {
	case SingleBank:
		for _, s := range p.Symbols() {
			s.Bank = bankX
			s.Duplicated = false
		}
	case Ideal:
		res.Ports = machine.PortsDualPorted
		for _, s := range p.Symbols() {
			s.Bank = bankX
			s.Duplicated = false
		}
	case LowOrder:
		res.Ports = machine.PortsLowOrder
		// Placement cannot steer banks: the bank is the address parity.
		// Symbols are laid out flat; memory operations stay untagged
		// and the scheduler pairs them freely, betting on the hardware.
		for _, s := range p.Symbols() {
			s.Bank = machine.BankNone
			s.Duplicated = false
		}
	case FullDup:
		for _, s := range p.Symbols() {
			s.Bank = machine.BankBoth
			s.Duplicated = true
		}
	case CB, CBProfiled, CBDup:
		policy := core.WeightStatic
		if opts.Mode == CBProfiled || opts.Profiled {
			policy = core.WeightProfiled
		}
		sc := opts.Scanner
		if sc == nil {
			sc = new(core.Scanner)
		}
		g := sc.BuildGraph(p, policy)
		fmPasses := -1
		if opts.FMPasses > 0 {
			fmPasses = opts.FMPasses
		} else if opts.FMPasses < 0 {
			fmPasses = 0
		}
		part := g.PartitionWithPasses(opts.Method, fmPasses)
		res.Graph, res.Part = g, part
		for _, s := range part.SetX {
			s.Bank = bankX
			s.Duplicated = false
		}
		for _, s := range part.SetY {
			s.Bank = bankY
			s.Duplicated = false
		}
		if opts.Mode == CBDup {
			// Partial duplication. With no filter, replicate the arrays
			// flagged while building the graph — those with simultaneous
			// data-ready accesses that no partition can separate
			// (Figure 6). With a filter, the caller names the exact
			// duplication set: any partitioned array it accepts is
			// replicated, marked or not, which is how the explorer
			// searches duplication subsets beyond the paper's policy.
			for _, s := range g.Nodes {
				if !s.IsArray() {
					continue
				}
				if opts.DupFilter != nil {
					if !opts.DupFilter(s) {
						continue
					}
				} else if !g.DupMarks[s] {
					continue
				}
				s.Bank = machine.BankBoth
				s.Duplicated = true
			}
		}
		// Save/restore slots are partitioned mechanically: successive
		// slots of each function alternate between the banks.
		for _, f := range p.Funcs {
			next := bankX
			for _, s := range f.Locals {
				if !s.Save {
					continue
				}
				s.Bank = next
				s.Duplicated = false
				next = next.Other()
			}
		}
	default:
		return nil, fmt.Errorf("alloc: unknown mode %v", opts.Mode)
	}

	insertCoherenceStores(p, opts, res)
	tagMemOps(p)
	if err := layout(p, res); err != nil {
		return nil, err
	}
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("alloc: %w", err)
	}
	return res, nil
}

// insertCoherenceStores doubles every store to a duplicated symbol:
// the original targets the X copy and a clone, inserted immediately
// after it, targets the Y copy (the pair swaps under opts.SwapBanks).
// The two stores carry different bank tags, so the dependence graph
// lets them issue in the same long instruction when both memory units
// are free.
func insertCoherenceStores(p *ir.Program, opts Options, res *Result) {
	bankX, bankY := machine.BankX, machine.BankY
	if opts.SwapBanks {
		bankX, bankY = bankY, bankX
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			var out []*ir.Op
			for _, op := range b.Ops {
				if op.Kind == ir.OpStore && op.Sym.Duplicated {
					op.Bank = bankX
					clone := &ir.Op{
						Kind: ir.OpStore,
						Args: op.Args,
						Idx:  op.Idx,
						Sym:  op.Sym,
						Bank: bankY,
					}
					op.DupPair, clone.DupPair = clone, op
					if opts.InterruptSafe {
						op.Atomic, clone.Atomic = true, true
					}
					out = append(out, op, clone)
					res.DupStores++
					continue
				}
				out = append(out, op)
			}
			b.Ops = out
		}
	}
	for _, s := range p.Symbols() {
		if s.Duplicated {
			res.Duplicated = append(res.Duplicated, s)
		}
	}
}

// tagMemOps stamps every remaining memory operation with its symbol's
// bank. Loads from duplicated symbols stay BankBoth: the scheduler may
// satisfy them from either copy.
func tagMemOps(p *ir.Program) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if !op.IsMem() {
					continue
				}
				if op.Kind == ir.OpStore && op.Sym.Duplicated {
					continue // already tagged by the expansion
				}
				op.Bank = op.Sym.Bank
			}
		}
	}
}

// layout assigns word addresses: first the duplicated region (equal
// addresses in both banks), then each bank's globals, then the static
// stack frames.
func layout(p *ir.Program, res *Result) error {
	cursorDup := 0
	for _, s := range p.Symbols() {
		if s.Duplicated {
			s.Addr = cursorDup
			cursorDup += s.Size
		}
	}
	res.DupWords = cursorDup

	x, y := cursorDup, cursorDup
	place := func(s *ir.Symbol) {
		switch s.Bank {
		case machine.BankY:
			s.Addr = y
			y += s.Size
		default:
			s.Addr = x
			x += s.Size
		}
	}
	for _, s := range p.Globals {
		if !s.Duplicated {
			place(s)
		}
	}
	res.GlobalX, res.GlobalY = x-cursorDup, y-cursorDup

	gx, gy := x, y
	for _, f := range p.Funcs {
		fx, fy := 0, 0
		for _, s := range f.Locals {
			if s.Duplicated {
				continue
			}
			if s.Bank == machine.BankY {
				fy += s.Size
			} else {
				fx += s.Size
			}
		}
		f.FrameWordsX, f.FrameWordsY = fx, fy
		for _, s := range f.Locals {
			if !s.Duplicated {
				place(s)
			}
		}
	}
	res.StackX, res.StackY = x-gx, y-gy

	if x > machine.BankWords || y > machine.BankWords {
		return fmt.Errorf("alloc: data exceeds bank capacity (X=%d Y=%d words, capacity %d)",
			x, y, machine.BankWords)
	}
	return nil
}
