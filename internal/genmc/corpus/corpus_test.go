package corpus_test

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dualbank/internal/genmc"
	"dualbank/internal/genmc/corpus"
	"dualbank/internal/minic"
	"dualbank/internal/pipeline"
)

// TestTransformsPreserveValidity: the metamorphic rewrites emit source
// the front end accepts, renaming actually renames, and permutation
// actually reorders.
func TestTransformsPreserveValidity(t *testing.T) {
	p := genmc.Generate(genmc.Derive(genmc.Window, 11))
	renamed, err := corpus.RenameIdents(p.Source)
	if err != nil {
		t.Fatalf("rename: %v", err)
	}
	if strings.Contains(renamed, "acc0") {
		t.Error("rename left original identifier acc0 in place")
	}
	permuted, err := corpus.PermuteDecls(p.Source)
	if err != nil {
		t.Fatalf("permute: %v", err)
	}
	if permuted == p.Source {
		t.Error("permutation returned the original source")
	}
	if !strings.HasPrefix(strings.TrimSpace(permuted), "void main") {
		t.Errorf("reversed program should lead with main:\n%.80s", permuted)
	}
	for label, src := range map[string]string{"renamed": renamed, "permuted": permuted} {
		file, err := minic.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", label, err, src)
		}
		if err := minic.Analyze(file); err != nil {
			t.Fatalf("%s: analyze: %v\n%s", label, err, src)
		}
	}
}

// TestPopulationProperties: populations are deterministic, archetypes
// round-robin, and distinct base seeds draw disjoint program seeds.
func TestPopulationProperties(t *testing.T) {
	a := genmc.Population(30, 1)
	b := genmc.Population(30, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("population not deterministic at %d", i)
		}
	}
	if a[0].Archetype != genmc.Pair || a[1].Archetype != genmc.Window || a[2].Archetype != genmc.Chain {
		t.Errorf("archetypes do not round-robin: %v %v %v", a[0].Archetype, a[1].Archetype, a[2].Archetype)
	}
	seen := map[uint64]bool{}
	for _, k := range a {
		seen[k.Seed] = true
	}
	for _, k := range genmc.Population(30, 7) {
		if seen[k.Seed] {
			t.Fatalf("base seeds 1 and 7 share program seed %d", k.Seed)
		}
	}
}

// TestVerifyProgramDetectsBrokenOracle: a wrong expectation must fail —
// the gauntlet is only trustworthy if it can reject.
func TestVerifyProgramDetectsBrokenOracle(t *testing.T) {
	p := genmc.Generate(genmc.Derive(genmc.Pair, 3))
	p.Out["out"][0] ^= 1
	_, fails := corpus.VerifyProgram(context.Background(), p, new(pipeline.Compiler), false)
	if len(fails) == 0 {
		t.Fatal("corrupted expected output verified clean")
	}
}

// TestCorpusSample is the always-on gate: a fixed 100-program sample
// across all three archetypes runs the full differential and
// metamorphic gauntlet on every `go test ./...`.
func TestCorpusSample(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sample in short mode")
	}
	r, err := corpus.Run(context.Background(), corpus.Options{N: 100, Seed: 1, Metamorphic: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range r.Failures {
		t.Error(f)
	}
	total := 0
	for _, s := range r.Stats {
		total += s.Programs
		if s.Programs == 0 {
			t.Errorf("archetype %s got no programs", s.Archetype)
		}
	}
	if total != 100 {
		t.Errorf("stats cover %d programs, want 100", total)
	}
}

// TestCorpusFull is the 1k-program nightly gate, opt-in via DSP_CORPUS=1.
// When CORPUS_REPORT names a path, the full report (including the
// per-archetype failure counts CI uploads as an artifact) is written
// there even on failure.
func TestCorpusFull(t *testing.T) {
	if os.Getenv("DSP_CORPUS") != "1" {
		t.Skip("set DSP_CORPUS=1 to run the full 1k-program corpus gate")
	}
	seed := uint64(1)
	if s := os.Getenv("DSP_CORPUS_SEED"); s != "" {
		var err error
		if seed, err = strconv.ParseUint(s, 10, 64); err != nil {
			t.Fatalf("DSP_CORPUS_SEED: %v", err)
		}
	}
	r, err := corpus.Run(context.Background(), corpus.Options{N: 1000, Seed: seed, Metamorphic: true})
	if err != nil {
		t.Fatal(err)
	}
	if path := os.Getenv("CORPUS_REPORT"); path != "" {
		if err := r.WriteFile(path); err != nil {
			t.Errorf("writing %s: %v", path, err)
		}
	}
	for _, f := range r.Failures {
		t.Error(f)
	}
}

// TestReportRoundTrip: WriteFile output is stable and ReadReport
// restores it exactly.
func TestReportRoundTrip(t *testing.T) {
	r, err := corpus.Run(context.Background(), corpus.Options{N: 6, Seed: 5, Metamorphic: false})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := corpus.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("report did not round-trip byte-identically")
	}
	if back.N != r.N || back.Seed != r.Seed || len(back.Rows) != len(r.Rows) {
		t.Errorf("round-trip changed report shape: %+v vs %+v", back, r)
	}
}
