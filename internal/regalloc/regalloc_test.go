package regalloc_test

import (
	"fmt"
	"strings"
	"testing"

	"dualbank/internal/ir"
	"dualbank/internal/lower"
	"dualbank/internal/minic"
	"dualbank/internal/opt"
	"dualbank/internal/regalloc"
	"dualbank/internal/sim"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opt.Run(p, opt.Options{})
	return p
}

func allocate(t *testing.T, src string) (*ir.Program, map[string]regalloc.Stats) {
	t.Helper()
	p := build(t, src)
	stats, err := regalloc.Run(p)
	if err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	return p, stats
}

func readGlobal(t *testing.T, p *ir.Program, name string, idx int) int32 {
	t.Helper()
	in := sim.NewInterp(p)
	if err := in.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	g := in.GlobalByName(name)
	if g == nil {
		t.Fatalf("no global %q", name)
	}
	return in.Int32(g, idx)
}

func TestRegallocProducesPhysicalRegisters(t *testing.T) {
	p, _ := allocate(t, `int r; void main() { int a = 1; int b = 2; r = a + b; }`)
	f := p.Func("main")
	if !f.Phys() {
		t.Fatal("function not in physical form")
	}
	var buf []ir.Reg
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			for _, r := range append(op.Uses(buf[:0]), op.Dst) {
				if r != ir.NoReg && (r < 1 || r > 64) {
					t.Fatalf("register %v outside the physical files", r)
				}
			}
		}
	}
}

func TestRegallocSemanticsPreserved(t *testing.T) {
	src := `
int r;
int mix(int a, int b) { return a * 10 + b; }
void main() {
	int s = 0;
	int i;
	for (i = 0; i < 6; i++) {
		s = mix(s % 100, i);
	}
	r = s;
}
`
	pre := build(t, src)
	want := readGlobal(t, pre, "r", 0)
	post, _ := allocate(t, src)
	got := readGlobal(t, post, "r", 0)
	if got != want {
		t.Fatalf("post-regalloc result %d, want %d", got, want)
	}
}

// TestRegallocSpills forces more simultaneously-live values than the
// 31 allocatable integer registers and checks spill slots appear and
// semantics survive.
func TestRegallocSpills(t *testing.T) {
	// Build a program with ~40 live scalars combined at the end.
	var decl, sum strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&decl, "\tint v%d = g + %d;\n", i, i)
		if i > 0 {
			sum.WriteString(" + ")
		}
		fmt.Fprintf(&sum, "v%d*v%d", i, i)
	}
	src := fmt.Sprintf("int g = 3;\nint r;\nvoid main() {\n%s\tr = %s;\n}\n",
		decl.String(), sum.String())

	pre := build(t, src)
	want := readGlobal(t, pre, "r", 0)

	post, stats := allocate(t, src)
	if stats["main"].Spilled == 0 {
		t.Fatal("expected spills with 40 live values")
	}
	spillSyms := 0
	for _, s := range post.Func("main").Locals {
		if s.Kind == ir.SymSpill && !s.Save {
			spillSyms++
		}
	}
	if spillSyms == 0 {
		t.Fatal("no spill slots created")
	}
	if got := readGlobal(t, post, "r", 0); got != want {
		t.Fatalf("spilled program computes %d, want %d", got, want)
	}
}

// TestCalleeSaveSlots: non-main functions save every register they
// write; main saves nothing.
func TestCalleeSaveSlots(t *testing.T) {
	p, stats := allocate(t, `
int r;
int work(int x) {
	int a = x + 1;
	int b = a * 2;
	return a + b;
}
void main() { r = work(5); }
`)
	if stats["main"].SaveSlots != 0 {
		t.Errorf("main created %d save slots, want 0", stats["main"].SaveSlots)
	}
	if stats["work"].SaveSlots == 0 {
		t.Error("work should save its written registers")
	}
	// Save slots carry the Save flag so the allocation pass can assign
	// them to alternating banks mechanically.
	for _, s := range p.Func("work").Locals {
		if strings.Contains(s.Name, ".save.") && !s.Save {
			t.Errorf("slot %s missing Save flag", s.Name)
		}
	}
}

// TestCallerValuesSurviveCalls: values live across a call must be
// intact afterwards (the callee-save-everything convention).
func TestCallerValuesSurviveCalls(t *testing.T) {
	src := `
int r;
int clobber() {
	int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
	return a + b + c + d + e;
}
void main() {
	int x = 111;
	int y = 222;
	int z = clobber();
	r = x + y + z; // 348
}
`
	p, _ := allocate(t, src)
	if got := readGlobal(t, p, "r", 0); got != 348 {
		t.Fatalf("r = %d, want 348", got)
	}
}

// TestNoInterferingSharedColors verifies the fundamental colouring
// invariant on a real program: two values never share a register while
// both are live. We check it operationally: run the original and the
// allocated programs and require identical output on a program with
// heavy register churn.
func TestNoInterferingSharedColors(t *testing.T) {
	src := `
int r[8];
void main() {
	int i;
	for (i = 0; i < 8; i++) {
		int a = i + 1;
		int b = a * a;
		int c = b - i;
		int d = c << 1;
		r[i] = a + b + c + d;
	}
}
`
	pre := build(t, src)
	post, _ := allocate(t, src)
	inPre := sim.NewInterp(pre)
	if err := inPre.Run(); err != nil {
		t.Fatal(err)
	}
	inPost := sim.NewInterp(post)
	if err := inPost.Run(); err != nil {
		t.Fatal(err)
	}
	gPre := inPre.GlobalByName("r")
	gPost := inPost.GlobalByName("r")
	for i := 0; i < 8; i++ {
		if inPre.Int32(gPre, i) != inPost.Int32(gPost, i) {
			t.Fatalf("r[%d]: pre %d, post %d", i, inPre.Int32(gPre, i), inPost.Int32(gPost, i))
		}
	}
}

func TestFloatAndIntFilesIndependent(t *testing.T) {
	p, _ := allocate(t, `
float fr;
int r;
void main() {
	float x = 1.5;
	float y = 2.5;
	int a = 3;
	int b = 4;
	fr = x * y;
	r = a * b;
}
`)
	if got := readGlobal(t, p, "r", 0); got != 12 {
		t.Fatalf("r = %d, want 12", got)
	}
}
