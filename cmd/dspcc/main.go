// Command dspcc is the MiniC compiler driver: it compiles a source
// file for the dual-bank VLIW model DSP and prints the resulting IR,
// interference graph, data partition, or VLIW assembly.
//
// Usage:
//
//	dspcc [-mode cb|pr|dup|fulldup|ideal|single] [-dump ir|graph|asm|all] file.c
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dualbank/internal/advise"
	"dualbank/internal/alloc"
	"dualbank/internal/asm"
	"dualbank/internal/encode"
	"dualbank/internal/pipeline"
)

var modeNames = map[string]alloc.Mode{
	"single":   alloc.SingleBank,
	"cb":       alloc.CB,
	"pr":       alloc.CBProfiled,
	"dup":      alloc.CBDup,
	"fulldup":  alloc.FullDup,
	"ideal":    alloc.Ideal,
	"loworder": alloc.LowOrder,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, so the smoke
// tests can drive the whole driver in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspcc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "cb", "data allocation mode: single, cb, pr, dup, fulldup, ideal, loworder")
	dump := fs.String("dump", "asm", "what to print: ir, graph, asm, stats, advise, all")
	out := fs.String("o", "", "write a binary ROM image to this file (run it with dspsim -image)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m, ok := modeNames[*mode]
	if !ok {
		fmt.Fprintf(stderr, "dspcc: unknown mode %q\n", *mode)
		return 2
	}
	src, name, err := readSource(fs.Args(), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "dspcc:", err)
		return 1
	}
	c, err := pipeline.Compile(src, name, pipeline.Options{Mode: m})
	if err != nil {
		fmt.Fprintln(stderr, "dspcc:", err)
		return 1
	}
	if *out != "" {
		img, err := encode.Encode(c.Sched)
		if err != nil {
			fmt.Fprintln(stderr, "dspcc:", err)
			return 1
		}
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			fmt.Fprintln(stderr, "dspcc:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d bytes, %d instructions)\n", *out, len(img), c.Sched.StaticInstrs())
	}
	show := func(what string) bool { return *dump == what || *dump == "all" }
	if show("ir") {
		fmt.Fprint(stdout, c.IR.String())
	}
	if show("graph") {
		if c.Alloc.Graph != nil {
			fmt.Fprintln(stdout, "interference graph:")
			fmt.Fprint(stdout, c.Alloc.Graph.String())
			fmt.Fprintln(stdout, "partition:")
			fmt.Fprintln(stdout, c.Alloc.Part.String())
		} else {
			fmt.Fprintf(stdout, "mode %s builds no interference graph\n", c.Alloc.Mode)
		}
	}
	if show("asm") {
		fmt.Fprint(stdout, asm.Print(c.Sched))
	}
	if show("advise") {
		fmt.Fprint(stdout, advise.Report(c))
	}
	if show("stats") || show("all") {
		fmt.Fprintf(stdout, "\n; mode=%s dupStores=%d X=%d+%d Y=%d+%d words\n",
			c.Alloc.Mode, c.Alloc.DupStores,
			c.Alloc.DupWords+c.Alloc.GlobalX, c.Alloc.StackX,
			c.Alloc.DupWords+c.Alloc.GlobalY, c.Alloc.StackY)
		fmt.Fprint(stdout, c.Sched.StaticStats())
	}
	return 0
}

func readSource(args []string, stdin io.Reader) (src, name string, err error) {
	if len(args) == 0 || args[0] == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), "stdin", err
	}
	b, err := os.ReadFile(args[0])
	return string(b), args[0], err
}
