package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		Bench: "fir_32_1", Config: "part=fm;dup=all", Cycles: 1234,
		MemXData: 10, MemYData: 12, MemStack: 3, MemInstr: 40,
		DupStores: 2, Duplicated: []string{"h", "x"},
	}
	key := Key(rec.Bench, rec.Config, "units=2")
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store returned a record")
	}
	if err := s.Put(key, rec); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || got.Cycles != rec.Cycles || got.Config != rec.Config {
		t.Fatalf("Get = %+v, %v", got, ok)
	}

	// A fresh Open over the same directory must rebuild the index from
	// the files alone.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d records, want 1", s2.Len())
	}
	got, ok = s2.Get(key)
	if !ok || got.Cycles != 1234 || len(got.Duplicated) != 2 {
		t.Fatalf("reopened Get = %+v, %v", got, ok)
	}

	// Infeasible records round-trip their error.
	bad := Record{Bench: "b", Config: "part=greedy;dup=all", Err: "bank overflow"}
	badKey := Key(bad.Bench, bad.Config, "units=2")
	if err := s.Put(badKey, bad); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(badKey); !ok || got.Err != "bank overflow" {
		t.Fatalf("infeasible record = %+v, %v", got, ok)
	}
}

func TestStoreSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key("a", "part=greedy", "m"), Record{Bench: "a", Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notjson.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("store loaded %d records, want 1 (corrupt and foreign files skipped)", s2.Len())
	}
}

func TestStoreOverwriteIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("a", "part=greedy", "m")
	for i := 0; i < 3; i++ {
		if err := s.Put(key, Record{Bench: "a", Cycles: 7}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d records after repeated Put, want 1", s.Len())
	}
}
