package pipeline

// Float-typed pipeline fuzzing. Because the Go evaluator mirrors the
// MiniC operation order exactly and both sides round every operation
// to float32, results must match bit-for-bit (NaNs compare by bit
// pattern class).

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"dualbank/internal/alloc"
)

type fexpr struct {
	src  string
	eval func(env map[string]float32) float32
}

type fgen struct {
	rng  *rand.Rand
	vars []string
}

func flit(v float32) fexpr {
	s := strconv.FormatFloat(float64(v), 'g', -1, 32)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	if v < 0 {
		s = "(" + s + ")"
	}
	return fexpr{src: s, eval: func(map[string]float32) float32 { return v }}
}

func (g *fgen) leaf() fexpr {
	if g.rng.Intn(2) == 0 {
		name := g.vars[g.rng.Intn(len(g.vars))]
		return fexpr{src: name, eval: func(e map[string]float32) float32 { return e[name] }}
	}
	return flit(float32(g.rng.Intn(41)-20) * 0.25)
}

func (g *fgen) gen(depth int) fexpr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		return g.leaf()
	}
	switch g.rng.Intn(7) {
	case 0:
		x := g.gen(depth - 1)
		return fexpr{
			src:  "(-" + x.src + ")",
			eval: func(e map[string]float32) float32 { return -x.eval(e) },
		}
	case 1: // comparison-driven ternary
		a, b := g.gen(depth-1), g.gen(depth-1)
		x, y := g.gen(depth-1), g.gen(depth-1)
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		op := ops[g.rng.Intn(len(ops))]
		return fexpr{
			src: fmt.Sprintf("((%s %s %s) ? %s : %s)", a.src, op, b.src, x.src, y.src),
			eval: func(e map[string]float32) float32 {
				av, bv := a.eval(e), b.eval(e)
				var c bool
				switch op {
				case "<":
					c = av < bv
				case "<=":
					c = av <= bv
				case ">":
					c = av > bv
				case ">=":
					c = av >= bv
				case "==":
					c = av == bv
				default:
					c = av != bv
				}
				if c {
					return x.eval(e)
				}
				return y.eval(e)
			},
		}
	default:
		a, b := g.gen(depth-1), g.gen(depth-1)
		ops := []string{"+", "-", "*", "/"}
		op := ops[g.rng.Intn(len(ops))]
		return fexpr{
			src: fmt.Sprintf("(%s %s %s)", a.src, op, b.src),
			eval: func(e map[string]float32) float32 {
				x, y := a.eval(e), b.eval(e)
				switch op {
				case "+":
					return x + y
				case "-":
					return x - y
				case "*":
					return x * y
				}
				return x / y // IEEE semantics: /0 gives an infinity or NaN
			},
		}
	}
}

func genFloatProgram(rng *rand.Rand) (string, []float32) {
	g := &fgen{rng: rng}
	nVars := 2 + rng.Intn(3)
	trips := 1 + rng.Intn(8)

	env := map[string]float32{}
	var sb strings.Builder
	for i := 0; i < nVars; i++ {
		name := fmt.Sprintf("f%d", i)
		init := float32(rng.Intn(17)-8) * 0.5
		env[name] = init
		fmt.Fprintf(&sb, "float %s = %s;\n", name, flit(init).src)
		g.vars = append(g.vars, name)
	}
	fmt.Fprintf(&sb, "float out[%d];\n", nVars)
	fmt.Fprintf(&sb, "void main() {\n\tint i;\n\tfor (i = 0; i < %d; i++) {\n", trips)

	type stmt struct {
		target string
		e      fexpr
	}
	var stmts []stmt
	nStmts := 1 + rng.Intn(3)
	for s := 0; s < nStmts; s++ {
		target := fmt.Sprintf("f%d", rng.Intn(nVars))
		e := g.gen(3)
		stmts = append(stmts, stmt{target, e})
		fmt.Fprintf(&sb, "\t\t%s = %s;\n", target, e.src)
	}
	sb.WriteString("\t}\n")
	for i := 0; i < nVars; i++ {
		fmt.Fprintf(&sb, "\tout[%d] = f%d;\n", i, i)
	}
	sb.WriteString("}\n")

	for it := 0; it < trips; it++ {
		for _, s := range stmts {
			env[s.target] = s.e.eval(env)
		}
	}
	want := make([]float32, nVars)
	for i := range want {
		want[i] = env[fmt.Sprintf("f%d", i)]
	}
	return sb.String(), want
}

// TestRandomFloatPrograms checks bit-exact float behaviour through the
// whole pipeline under several allocation modes.
func TestRandomFloatPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		src, want := genFloatProgram(rng)
		for _, mode := range []alloc.Mode{alloc.SingleBank, alloc.CB, alloc.Ideal} {
			c, err := Compile(src, fmt.Sprintf("ffuzz%d", seed), Options{Mode: mode})
			if err != nil {
				t.Fatalf("seed %d: compile: %v\nsource:\n%s", seed, err, src)
			}
			m, err := c.Run()
			if err != nil {
				t.Fatalf("seed %d: run: %v\nsource:\n%s", seed, err, src)
			}
			out := c.Global("out")
			for i, w := range want {
				got, err := m.Float32(out, i)
				if err != nil {
					t.Fatal(err)
				}
				same := math.Float32bits(got) == math.Float32bits(w) ||
					(got != got && w != w) // both NaN
				if !same {
					t.Fatalf("seed %d mode %v: out[%d] = %v (%#x), want %v (%#x)\nsource:\n%s",
						seed, mode, i, got, math.Float32bits(got), w, math.Float32bits(w), src)
				}
			}
		}
	}
}
