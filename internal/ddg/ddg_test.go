package ddg

import (
	"testing"
	"testing/quick"

	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

func sym(name string) *ir.Symbol {
	return &ir.Symbol{Name: name, Elem: ir.TInt, Size: 8, Dims: []int{8}}
}

// edge looks up the dependence from op index a to b.
func edge(g *Graph, a, b int) (Edge, bool) {
	for _, e := range g.Succ[a] {
		if e.To == b {
			return e, true
		}
	}
	return Edge{}, false
}

func block(f *ir.Func, ops ...*ir.Op) *ir.Block {
	b := f.NewBlock()
	b.Ops = ops
	return b
}

func TestFlowDependence(t *testing.T) {
	f := ir.NewFunc("t", ir.TVoid)
	r1, r2 := f.NewReg(ir.TInt), f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: r1, Imm: 1},
		&ir.Op{Kind: ir.OpAdd, Dst: r2, Args: [2]ir.Reg{r1, r1}},
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	e, ok := edge(g, 0, 1)
	if !ok || !e.Strict {
		t.Fatalf("const->add should be a strict flow dependence, got %v %v", e, ok)
	}
}

func TestAntiDependenceIsWeak(t *testing.T) {
	f := ir.NewFunc("t", ir.TVoid)
	r1, r2 := f.NewReg(ir.TInt), f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: r1, Imm: 1},
		&ir.Op{Kind: ir.OpAdd, Dst: r2, Args: [2]ir.Reg{r1, r1}}, // reads r1
		&ir.Op{Kind: ir.OpConst, Dst: r1, Imm: 2},                // redefines r1
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	e, ok := edge(g, 1, 2)
	if !ok {
		t.Fatal("missing anti edge from reader to redefinition")
	}
	if e.Strict {
		t.Fatal("anti dependence must be weak (same-instruction legal)")
	}
	// Output dependence const->const is strict.
	e, ok = edge(g, 0, 2)
	if !ok || !e.Strict {
		t.Fatal("output dependence must be strict")
	}
}

func TestMemoryDependences(t *testing.T) {
	a := sym("a")
	f := ir.NewFunc("t", ir.TVoid)
	v := f.NewReg(ir.TInt)
	w := f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: v, Imm: 5},
		&ir.Op{Kind: ir.OpStore, Sym: a, Args: [2]ir.Reg{v}}, // 1
		&ir.Op{Kind: ir.OpLoad, Dst: w, Sym: a},              // 2: flow (strict)
		&ir.Op{Kind: ir.OpStore, Sym: a, Args: [2]ir.Reg{v}}, // 3: anti from 2 (weak), output from 1 (strict)
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	if e, ok := edge(g, 1, 2); !ok || !e.Strict {
		t.Error("store->load must be strict")
	}
	if e, ok := edge(g, 2, 3); !ok || e.Strict {
		t.Error("load->store must be a weak anti dependence")
	}
	if e, ok := edge(g, 1, 3); !ok || !e.Strict {
		t.Error("store->store must be strict")
	}
}

func TestDifferentSymbolsIndependent(t *testing.T) {
	a, c := sym("a"), sym("c")
	f := ir.NewFunc("t", ir.TVoid)
	v := f.NewReg(ir.TInt)
	w := f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: v, Imm: 5},
		&ir.Op{Kind: ir.OpStore, Sym: a, Args: [2]ir.Reg{v}},
		&ir.Op{Kind: ir.OpLoad, Dst: w, Sym: c},
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	if _, ok := edge(g, 1, 2); ok {
		t.Fatal("accesses to different symbols must not conflict")
	}
}

// TestDuplicatedStorePairIndependent: the X and Y halves of a
// duplicated store carry different bank tags and must not depend on
// each other — that is what lets them issue in one instruction.
func TestDuplicatedStorePairIndependent(t *testing.T) {
	d := sym("dup")
	f := ir.NewFunc("t", ir.TVoid)
	v := f.NewReg(ir.TInt)
	w := f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: v, Imm: 5},
		&ir.Op{Kind: ir.OpStore, Sym: d, Args: [2]ir.Reg{v}, Bank: machine.BankX},
		&ir.Op{Kind: ir.OpStore, Sym: d, Args: [2]ir.Reg{v}, Bank: machine.BankY},
		// A duplicated load (BankBoth) conflicts with both copies.
		&ir.Op{Kind: ir.OpLoad, Dst: w, Sym: d, Bank: machine.BankBoth},
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	if _, ok := edge(g, 1, 2); ok {
		t.Fatal("X and Y halves must be independent")
	}
	if e, ok := edge(g, 1, 3); !ok || !e.Strict {
		t.Error("load from duplicated symbol must see the X store")
	}
	if e, ok := edge(g, 2, 3); !ok || !e.Strict {
		t.Error("load from duplicated symbol must see the Y store")
	}
}

func TestCallIsMemoryBarrier(t *testing.T) {
	a := sym("a")
	f := ir.NewFunc("t", ir.TVoid)
	v := f.NewReg(ir.TInt)
	w := f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: v, Imm: 5},
		&ir.Op{Kind: ir.OpStore, Sym: a, Args: [2]ir.Reg{v}}, // 1
		&ir.Op{Kind: ir.OpCall, Callee: "g"},                 // 2
		&ir.Op{Kind: ir.OpLoad, Dst: w, Sym: a},              // 3
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	if e, ok := edge(g, 1, 2); !ok || e.Strict {
		t.Error("store before call: weak edge (store may share the call's instruction)")
	}
	if e, ok := edge(g, 2, 3); !ok || !e.Strict {
		t.Error("load after call must wait for the return")
	}
}

func TestTerminatorLast(t *testing.T) {
	a := sym("a")
	f := ir.NewFunc("t", ir.TVoid)
	v := f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: v, Imm: 5},
		&ir.Op{Kind: ir.OpStore, Sym: a, Args: [2]ir.Reg{v}},
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	for i := 0; i < 2; i++ {
		e, ok := edge(g, i, 2)
		if !ok {
			t.Fatalf("terminator must depend on op %d", i)
		}
		if e.Strict {
			t.Fatalf("terminator edge from op %d should be weak", i)
		}
	}
}

func TestPriorityIsDescendantCount(t *testing.T) {
	// Chain: 0 -> 1 -> 2 (ret). Priorities: 2, 1, 0.
	f := ir.NewFunc("t", ir.TVoid)
	r1, r2 := f.NewReg(ir.TInt), f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: r1, Imm: 1},
		&ir.Op{Kind: ir.OpAdd, Dst: r2, Args: [2]ir.Reg{r1, r1}},
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	want := []int{2, 1, 0}
	for i, w := range want {
		if g.Priority[i] != w {
			t.Errorf("priority[%d] = %d, want %d", i, g.Priority[i], w)
		}
	}
}

// TestGraphStructuralProperties: on randomly generated blocks, all
// edges point forward (program order), Succ and Pred mirror each
// other, no self or duplicate edges exist, and priorities are
// consistent with edge direction (a predecessor's descendant count
// strictly exceeds its successor's when the successor's descendants
// are a subset).
func TestGraphStructuralProperties(t *testing.T) {
	syms := []*ir.Symbol{sym("a"), sym("b"), sym("c")}
	check := func(seedBytes []byte) bool {
		f := ir.NewFunc("t", ir.TVoid)
		regs := make([]ir.Reg, 6)
		for i := range regs {
			regs[i] = f.NewReg(ir.TInt)
		}
		b := f.NewBlock()
		// Build a pseudo-random block from the seed bytes.
		for _, x := range seedBytes {
			r := regs[int(x)%len(regs)]
			r2 := regs[int(x>>3)%len(regs)]
			s := syms[int(x>>6)%len(syms)]
			switch x % 4 {
			case 0:
				b.Ops = append(b.Ops, &ir.Op{Kind: ir.OpConst, Dst: r, Imm: int64(x)})
			case 1:
				b.Ops = append(b.Ops, &ir.Op{Kind: ir.OpAdd, Dst: r, Args: [2]ir.Reg{r2, r2}})
			case 2:
				b.Ops = append(b.Ops, &ir.Op{Kind: ir.OpLoad, Dst: r, Sym: s})
			case 3:
				b.Ops = append(b.Ops, &ir.Op{Kind: ir.OpStore, Args: [2]ir.Reg{r}, Sym: s})
			}
		}
		b.Ops = append(b.Ops, &ir.Op{Kind: ir.OpRet})
		g := Build(b)
		for i := range g.Succ {
			seen := map[int]bool{}
			for _, e := range g.Succ[i] {
				if e.To <= i {
					return false // backward or self edge
				}
				if seen[e.To] {
					return false // duplicate
				}
				seen[e.To] = true
				// Mirrored in Pred with the same strictness.
				found := false
				for _, p := range g.Pred[e.To] {
					if p.To == i && p.Strict == e.Strict {
						found = true
					}
				}
				if !found {
					return false
				}
				// Priority is a descendant count: predecessor counts at
				// least successor's descendants plus the successor.
				if g.Priority[i] < g.Priority[e.To]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMacReadsAccumulator: mac has a flow dependence on the previous
// definition of its destination.
func TestMacReadsAccumulator(t *testing.T) {
	f := ir.NewFunc("t", ir.TVoid)
	acc := f.NewReg(ir.TInt)
	x := f.NewReg(ir.TInt)
	b := block(f,
		&ir.Op{Kind: ir.OpConst, Dst: acc, Imm: 0},
		&ir.Op{Kind: ir.OpConst, Dst: x, Imm: 3},
		&ir.Op{Kind: ir.OpMac, Dst: acc, Args: [2]ir.Reg{x, x}},
		&ir.Op{Kind: ir.OpRet},
	)
	g := Build(b)
	if e, ok := edge(g, 0, 2); !ok || !e.Strict {
		t.Fatal("mac must have a strict flow edge from its accumulator's def")
	}
}
