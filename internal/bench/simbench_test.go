package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSimBenchSmoke runs the micro-benchmark on one tiny kernel with a
// short budget and checks the row invariants: one row per engine,
// cycle counts identical across engines, positive throughput numbers,
// and zero steady-state allocations on the compiled engine.
func TestSimBenchSmoke(t *testing.T) {
	rows, err := SimBench([]string{"iir_1_1"}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	engines := map[string]SimBenchRow{}
	for _, r := range rows {
		engines[r.Engine] = r
		if r.Bench != "iir_1_1" {
			t.Errorf("row bench = %q", r.Bench)
		}
		if r.Cycles != rows[0].Cycles {
			t.Errorf("engine %s cycles %d != %d", r.Engine, r.Cycles, rows[0].Cycles)
		}
		if r.NsPerRun <= 0 || r.NsPerCycle <= 0 || r.Runs < 3 {
			t.Errorf("engine %s: degenerate measurement %+v", r.Engine, r)
		}
	}
	for _, e := range []string{"machine", "fast", "compiled"} {
		if _, ok := engines[e]; !ok {
			t.Errorf("missing engine %q", e)
		}
	}
	if a := engines["compiled"].AllocsPerRun; a != 0 {
		t.Errorf("compiled engine allocates %.1f per run, want 0", a)
	}
	if engines["compiled"].SetupNs <= 0 {
		t.Error("compiled engine reports no lowering cost")
	}
	out := RenderSimBench(rows)
	if !strings.Contains(out, "iir_1_1") || !strings.Contains(out, "vs fast") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestSimBenchUnknownBenchmark(t *testing.T) {
	if _, err := SimBench([]string{"nope"}, time.Millisecond); err == nil {
		t.Fatal("want error for unknown benchmark")
	}
}

// row is a shorthand for speedup-math tests.
func row(bench, engine string, nsPerRun float64) SimBenchRow {
	return SimBenchRow{Bench: bench, Engine: engine, NsPerRun: nsPerRun}
}

func TestSimSpeedups(t *testing.T) {
	rows := []SimBenchRow{
		row("a", "fast", 1000), row("a", "compiled", 10),
		row("b", "fast", 300), row("b", "compiled", 100),
		row("c", "compiled", 5), // no fast row: skipped
	}
	s := SimSpeedups(rows)
	if len(s) != 2 || s["a"] != 100 || s["b"] != 3 {
		t.Fatalf("speedups = %v", s)
	}
}

func TestSimCheck(t *testing.T) {
	base := []SimBenchRow{
		row("kern", "fast", 10000), row("kern", "compiled", 100), // 100x
		row("app", "fast", 300), row("app", "compiled", 100), // 3x
	}
	ok := func(name string, cur []SimBenchRow) {
		t.Helper()
		if fails := SimCheck(cur, base, 0.10); len(fails) != 0 {
			t.Errorf("%s: unexpected failures %v", name, fails)
		}
	}
	bad := func(name string, cur []SimBenchRow, wantSub string) {
		t.Helper()
		fails := SimCheck(cur, base, 0.10)
		if len(fails) != 1 || !strings.Contains(fails[0], wantSub) {
			t.Errorf("%s: failures = %v, want one mentioning %q", name, fails, wantSub)
		}
	}
	// Identical measurements pass.
	ok("identical", base)
	// A kernel dropping from 100x to 40x stays above the 10x floor.
	ok("noisy kernel", []SimBenchRow{
		row("kern", "fast", 4000), row("kern", "compiled", 100),
		row("app", "fast", 300), row("app", "compiled", 100),
	})
	// A kernel crashing to 8x regresses.
	bad("kernel regression", []SimBenchRow{
		row("kern", "fast", 800), row("kern", "compiled", 100),
		row("app", "fast", 300), row("app", "compiled", 100),
	}, "kern")
	// A sub-floor baseline is held to the tolerance band alone.
	bad("app regression", []SimBenchRow{
		row("kern", "fast", 10000), row("kern", "compiled", 100),
		row("app", "fast", 250), row("app", "compiled", 100), // 2.5x < 3x*0.9
	}, "app")
	// Benchmarks missing from the current rows are skipped.
	ok("missing bench", []SimBenchRow{
		row("kern", "fast", 10000), row("kern", "compiled", 100),
	})
}

// TestReportSimBenchRoundTrip pins the BENCH_sim.json contract:
// WriteFile/ReadReport preserve the simbench rows.
func TestReportSimBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	in := &Report{SimBench: []SimBenchRow{
		{Bench: "fir_32_1", Engine: "compiled", Cycles: 75, Runs: 10,
			NsPerRun: 1100, NsPerCycle: 14.6, SetupNs: 50000},
	}}
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SimBench) != 1 || out.SimBench[0] != in.SimBench[0] {
		t.Fatalf("round trip mangled rows: %+v", out.SimBench)
	}
}
