// Command dspcc is the MiniC compiler driver: it compiles a source
// file for the dual-bank VLIW model DSP and prints the resulting IR,
// interference graph, data partition, or VLIW assembly.
//
// Usage:
//
//	dspcc [-mode cb|pr|dup|fulldup|ideal|single] [-dump ir|graph|asm|all] file.c
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dualbank/internal/advise"
	"dualbank/internal/alloc"
	"dualbank/internal/asm"
	"dualbank/internal/encode"
	"dualbank/internal/pipeline"
)

var modeNames = map[string]alloc.Mode{
	"single":   alloc.SingleBank,
	"cb":       alloc.CB,
	"pr":       alloc.CBProfiled,
	"dup":      alloc.CBDup,
	"fulldup":  alloc.FullDup,
	"ideal":    alloc.Ideal,
	"loworder": alloc.LowOrder,
}

func main() {
	mode := flag.String("mode", "cb", "data allocation mode: single, cb, pr, dup, fulldup, ideal, loworder")
	dump := flag.String("dump", "asm", "what to print: ir, graph, asm, stats, advise, all")
	out := flag.String("o", "", "write a binary ROM image to this file (run it with dspsim -image)")
	flag.Parse()

	m, ok := modeNames[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "dspcc: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	src, name, err := readSource(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspcc:", err)
		os.Exit(1)
	}
	c, err := pipeline.Compile(src, name, pipeline.Options{Mode: m})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspcc:", err)
		os.Exit(1)
	}
	if *out != "" {
		img, err := encode.Encode(c.Sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dspcc:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dspcc:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes, %d instructions)\n", *out, len(img), c.Sched.StaticInstrs())
	}
	show := func(what string) bool { return *dump == what || *dump == "all" }
	if show("ir") {
		fmt.Print(c.IR.String())
	}
	if show("graph") {
		if c.Alloc.Graph != nil {
			fmt.Println("interference graph:")
			fmt.Print(c.Alloc.Graph.String())
			fmt.Println("partition:")
			fmt.Println(c.Alloc.Part.String())
		} else {
			fmt.Printf("mode %s builds no interference graph\n", c.Alloc.Mode)
		}
	}
	if show("asm") {
		fmt.Print(asm.Print(c.Sched))
	}
	if show("advise") {
		fmt.Print(advise.Report(c))
	}
	if show("stats") || show("all") {
		fmt.Printf("\n; mode=%s dupStores=%d X=%d+%d Y=%d+%d words\n",
			c.Alloc.Mode, c.Alloc.DupStores,
			c.Alloc.DupWords+c.Alloc.GlobalX, c.Alloc.StackX,
			c.Alloc.DupWords+c.Alloc.GlobalY, c.Alloc.StackY)
		fmt.Print(c.Sched.StaticStats())
	}
}

func readSource(args []string) (src, name string, err error) {
	if len(args) == 0 || args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), "stdin", err
	}
	b, err := os.ReadFile(args[0])
	return string(b), args[0], err
}
