package ir

import "fmt"

// Verify checks structural invariants of the program's IR and returns
// the first violation found, or nil. It is run after lowering and after
// every transforming pass in tests.
func Verify(p *Program) error {
	for _, f := range p.Funcs {
		if err := verifyFunc(p, f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(p *Program, f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	for i, blk := range f.Blocks {
		if blk.ID != i {
			return fmt.Errorf("%s: ID %d at index %d", blk, blk.ID, i)
		}
		term := blk.Terminator()
		if term == nil || !term.Kind.IsTerminator() {
			return fmt.Errorf("%s: missing terminator", blk)
		}
		for j, op := range blk.Ops {
			if op.Kind.IsTerminator() && j != len(blk.Ops)-1 {
				return fmt.Errorf("%s: terminator %s mid-block", blk, op)
			}
			if err := verifyOp(p, f, blk, op); err != nil {
				return fmt.Errorf("%s: %s: %w", blk, op, err)
			}
		}
		switch term.Kind {
		case OpBr:
			if len(blk.Succs) != 1 {
				return fmt.Errorf("%s: br with %d succs", blk, len(blk.Succs))
			}
		case OpDo:
			if len(blk.Succs) != 1 {
				return fmt.Errorf("%s: do with %d succs", blk, len(blk.Succs))
			}
			if term.Args[0] == NoReg {
				return fmt.Errorf("%s: do without count register", blk)
			}
		case OpCondBr, OpEndDo:
			if len(blk.Succs) != 2 {
				return fmt.Errorf("%s: %s with %d succs", blk, term.Kind, len(blk.Succs))
			}
		case OpRet:
			if len(blk.Succs) != 0 {
				return fmt.Errorf("%s: ret with succs", blk)
			}
		}
		for _, s := range blk.Succs {
			if !hasBlock(s.Preds, blk) {
				return fmt.Errorf("%s: succ %s missing back-edge", blk, s)
			}
		}
		for _, pr := range blk.Preds {
			if !hasBlock(pr.Succs, blk) {
				return fmt.Errorf("%s: pred %s missing forward edge", blk, pr)
			}
		}
	}
	return nil
}

func verifyOp(p *Program, f *Func, blk *Block, op *Op) error {
	checkReg := func(r Reg, what string) error {
		if r == NoReg {
			return nil
		}
		if int(r) >= f.NumRegs() {
			return fmt.Errorf("%s register %s out of range", what, r)
		}
		return nil
	}
	if err := checkReg(op.Dst, "dst"); err != nil {
		return err
	}
	for _, a := range op.Args {
		if err := checkReg(a, "arg"); err != nil {
			return err
		}
	}
	if err := checkReg(op.Idx, "idx"); err != nil {
		return err
	}
	switch op.Kind {
	case OpInvalid:
		return fmt.Errorf("invalid op")
	case OpLoad:
		if op.Sym == nil {
			return fmt.Errorf("load without symbol")
		}
		if op.Dst == NoReg {
			return fmt.Errorf("load without dst")
		}
	case OpStore:
		if op.Sym == nil {
			return fmt.Errorf("store without symbol")
		}
		if op.Args[0] == NoReg {
			return fmt.Errorf("store without value")
		}
	case OpCall:
		if p.Func(op.Callee) == nil {
			return fmt.Errorf("call to unknown function %q", op.Callee)
		}
	case OpCondBr:
		if op.Args[0] == NoReg {
			return fmt.Errorf("condbr without condition")
		}
	case OpMac, OpFMac:
		if op.Dst == NoReg || op.Args[0] == NoReg || op.Args[1] == NoReg {
			return fmt.Errorf("mac needs dst and two args")
		}
	}
	if op.Idx != NoReg && !op.IsMem() {
		return fmt.Errorf("index register on non-memory op")
	}
	return nil
}

func hasBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
