package corpus

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestCertifySample(t *testing.T) {
	rep, err := Certify(context.Background(), CertifyOptions{N: 24, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 24 {
		t.Fatalf("got %d rows, want 24", len(rep.Rows))
	}
	total := 0
	for _, s := range rep.Stats {
		total += s.Programs
		if s.Certified > s.Programs || s.FMOptimal > s.Certified ||
			s.GreedyOptimal > s.Certified || s.AnnealOptimal > s.Certified {
			t.Errorf("%s: inconsistent tallies %+v", s.Archetype, s)
		}
	}
	if total != 24 {
		t.Fatalf("archetype tallies sum to %d, want 24", total)
	}
	for _, row := range rep.Rows {
		if row.Lower > row.Upper {
			t.Errorf("%s: lower %d > upper %d", row.Name, row.Lower, row.Upper)
		}
		for _, arm := range []struct {
			name string
			cost int64
		}{{"greedy", row.Greedy}, {"fm", row.FM}, {"anneal", row.Anneal}} {
			if arm.cost < row.Upper {
				t.Errorf("%s: exact %d worse than %s %d", row.Name, row.Upper, arm.name, arm.cost)
			}
		}
		if row.Verdict == "optimal" && row.Lower != row.Upper {
			t.Errorf("%s: optimal verdict with open interval [%d, %d]", row.Name, row.Lower, row.Upper)
		}
	}
}

// TestCertifySampleDeterministic: equal (N, Seed) at any worker width
// must produce identical reports.
func TestCertifySampleDeterministic(t *testing.T) {
	var reports [][]byte
	for _, w := range []int{1, 8} {
		rep, err := Certify(context.Background(), CertifyOptions{N: 16, Seed: 7, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Fatalf("certified sample differs between workers=1 and workers=8:\n%s\nvs\n%s",
			reports[0], reports[1])
	}
}

func TestCertifyReportText(t *testing.T) {
	rep, err := Certify(context.Background(), CertifyOptions{N: 9, Seed: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"certified sample", "archetype", "fm-opt", "FM provably optimal"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestCertifyRejectsBadN(t *testing.T) {
	if _, err := Certify(context.Background(), CertifyOptions{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
}
