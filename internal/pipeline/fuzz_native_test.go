package pipeline

// Native go-fuzz entry points over the generator-based differential
// tests: the fuzz engine explores the int64 seed space that drives the
// random-program generators, and every seed is checked the same way
// the deterministic property tests check their fixed seed ranges —
// compile under several allocation modes, execute, and compare every
// output word against the mirrored Go evaluator. Seed corpora live in
// testdata/fuzz/<target>/; CI runs each target briefly
// (go test -fuzz <target> -fuzztime 10s) as a smoke check.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dualbank/internal/compact"
)

// checkSeedProgram runs the scalar-program differential check for one
// generator seed.
func checkSeedProgram(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	src, want := genProgram(rng)
	for _, mode := range fuzzModes {
		c, err := Compile(src, fmt.Sprintf("fuzz%d", seed), Options{Mode: mode})
		if err != nil {
			t.Fatalf("seed %d mode %v: compile: %v\nsource:\n%s", seed, mode, err, src)
		}
		if err := compact.Validate(c.Sched); err != nil {
			t.Fatalf("seed %d mode %v: schedule: %v\nsource:\n%s", seed, mode, err, src)
		}
		m, err := c.Run()
		if err != nil {
			t.Fatalf("seed %d mode %v: run: %v\nsource:\n%s", seed, mode, err, src)
		}
		out := c.Global("out")
		for i, w := range want {
			got, err := m.Int32(out, i)
			if err != nil {
				t.Fatal(err)
			}
			if got != w {
				t.Fatalf("seed %d mode %v: out[%d] = %d, want %d\nsource:\n%s",
					seed, mode, i, got, w, src)
			}
		}
	}
}

func FuzzRandomPrograms(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(checkSeedProgram)
}

// checkSeedArrayProgram runs the array-program differential check for
// one generator seed.
func checkSeedArrayProgram(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	src, want := genArrayProgram(rng)
	for _, mode := range fuzzModes {
		c, err := Compile(src, fmt.Sprintf("afuzz%d", seed), Options{Mode: mode})
		if err != nil {
			t.Fatalf("seed %d mode %v: compile: %v\nsource:\n%s", seed, mode, err, src)
		}
		m, err := c.Run()
		if err != nil {
			t.Fatalf("seed %d mode %v: run: %v\nsource:\n%s", seed, mode, err, src)
		}
		for a := 0; a < arrCount; a++ {
			g := c.Global(fmt.Sprintf("m%d", a))
			for i := 0; i < arrSize; i++ {
				got, err := m.Int32(g, i)
				if err != nil {
					t.Fatalf("seed %d mode %v: %v", seed, mode, err)
				}
				if got != want.arrs[a][i] {
					t.Fatalf("seed %d mode %v: m%d[%d] = %d, want %d\nsource:\n%s",
						seed, mode, a, i, got, want.arrs[a][i], src)
				}
			}
		}
	}
}

func FuzzRandomArrayPrograms(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(checkSeedArrayProgram)
}

// checkSeedFloatProgram runs the float-program differential check for
// one generator seed, comparing bit patterns (NaN == NaN).
func checkSeedFloatProgram(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	src, want := genFloatProgram(rng)
	for _, mode := range fuzzModes {
		c, err := Compile(src, fmt.Sprintf("ffuzz%d", seed), Options{Mode: mode})
		if err != nil {
			t.Fatalf("seed %d mode %v: compile: %v\nsource:\n%s", seed, mode, err, src)
		}
		m, err := c.Run()
		if err != nil {
			t.Fatalf("seed %d mode %v: run: %v\nsource:\n%s", seed, mode, err, src)
		}
		out := c.Global("out")
		for i, w := range want {
			got, err := m.Float32(out, i)
			if err != nil {
				t.Fatal(err)
			}
			same := math.Float32bits(got) == math.Float32bits(w) ||
				(got != got && w != w) // both NaN
			if !same {
				t.Fatalf("seed %d mode %v: out[%d] = %v (%#x), want %v (%#x)\nsource:\n%s",
					seed, mode, i, got, math.Float32bits(got), w, math.Float32bits(w), src)
			}
		}
	}
}

func FuzzRandomFloatPrograms(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(checkSeedFloatProgram)
}
