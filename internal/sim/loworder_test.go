package sim_test

import (
	"fmt"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/sim"
)

// This file tests the low-order-interleaved memory organisation — the
// alternative the paper argues against in §1.2 and §3.2. Its §3.2
// claim is checked literally: for the Figure 6 access pattern
// s[n], s[n+m], low-order interleaving provides dual parallel access
// "but only if the value of m is odd. Even values of m would cause the
// two references to access the same memory bank."

// autocorrLag builds the Figure 6 loop with a fixed lag m.
func autocorrLag(m int) string {
	return fmt.Sprintf(`
float s[64] = {1.0, 2.0, 3.0, 4.0};
float R;
void main() {
	int n;
	float acc = 0.0;
	for (n = 0; n < 48; n++) {
		acc += s[n] * s[n + %d];
	}
	R = acc;
}
`, m)
}

func runLowOrder(t *testing.T, src string) *sim.Machine {
	t.Helper()
	_, sched := compileTo(t, src, alloc.LowOrder)
	m := sim.NewMachine(sched)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLowOrderParityClaim(t *testing.T) {
	odd := runLowOrder(t, autocorrLag(3))
	even := runLowOrder(t, autocorrLag(4))

	// Odd lag: the two loads always differ in parity — zero conflicts,
	// full dual access.
	if odd.BankConflicts != 0 {
		t.Errorf("odd lag: %d bank conflicts, want 0", odd.BankConflicts)
	}
	if odd.DualMemCycles == 0 {
		t.Error("odd lag: no dual accesses recorded")
	}
	// Even lag: the loads always collide — one stall per iteration.
	if even.BankConflicts < 40 {
		t.Errorf("even lag: %d conflicts, want ~48 (one per iteration)", even.BankConflicts)
	}
	if even.Cycles <= odd.Cycles {
		t.Errorf("even lag (%d cycles) should be slower than odd lag (%d)",
			even.Cycles, odd.Cycles)
	}
}

// TestLowOrderCorrectness: results are identical to the high-order
// banked organisation.
func TestLowOrderCorrectness(t *testing.T) {
	src := autocorrLag(5)
	pBank, schedBank := compileTo(t, src, alloc.CB)
	mb := sim.NewMachine(schedBank)
	if err := mb.Run(); err != nil {
		t.Fatal(err)
	}
	gb := globalOf(pBank, "R")
	wantW, err := mb.Word(gb, 0)
	if err != nil {
		t.Fatal(err)
	}

	pLow, schedLow := compileTo(t, src, alloc.LowOrder)
	ml := sim.NewMachine(schedLow)
	if err := ml.Run(); err != nil {
		t.Fatal(err)
	}
	gl := globalOf(pLow, "R")
	gotW, err := ml.Word(gl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotW != wantW {
		t.Fatalf("low-order result %#x != banked result %#x", gotW, wantW)
	}
}

// TestLowOrderBetweenBaselineAndIdeal: with mixed parities low-order
// lands between the single-bank baseline and the dual-ported ideal.
func TestLowOrderBetweenBaselineAndIdeal(t *testing.T) {
	src := `
float a[32] = {1.0};
float b[32] = {2.0};
float y[32];
void main() {
	int i;
	for (i = 0; i < 32; i++) {
		y[i] = a[i] * b[i];
	}
}
`
	cycles := map[alloc.Mode]int64{}
	for _, mode := range []alloc.Mode{alloc.SingleBank, alloc.LowOrder, alloc.Ideal} {
		_, sched := compileTo(t, src, mode)
		m := sim.NewMachine(sched)
		if err := m.Run(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		cycles[mode] = m.Cycles
	}
	if cycles[alloc.LowOrder] > cycles[alloc.SingleBank]+2 {
		t.Errorf("low-order (%d) slower than single bank (%d)",
			cycles[alloc.LowOrder], cycles[alloc.SingleBank])
	}
	if cycles[alloc.LowOrder] < cycles[alloc.Ideal] {
		t.Errorf("low-order (%d) beats dual-ported (%d)?",
			cycles[alloc.LowOrder], cycles[alloc.Ideal])
	}
}

// TestDynamicMemStats: the dynamic counters are self-consistent.
func TestDynamicMemStats(t *testing.T) {
	_, sched := compileTo(t, autocorrLag(3), alloc.CB)
	m := sim.NewMachine(sched)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.MemAccesses == 0 {
		t.Fatal("no memory accesses counted")
	}
	if m.DualMemCycles*2 > m.MemAccesses {
		t.Fatalf("dual cycles %d inconsistent with %d accesses", m.DualMemCycles, m.MemAccesses)
	}
	if m.BankConflicts != 0 {
		t.Fatal("banked model cannot have run-time conflicts")
	}
}
