package alloc_test

import (
	"testing"
	"testing/quick"

	"dualbank/internal/alloc"
	"dualbank/internal/ir"
	"dualbank/internal/lower"
	"dualbank/internal/machine"
	"dualbank/internal/minic"
	"dualbank/internal/opt"
	"dualbank/internal/regalloc"
)

// build compiles source through regalloc, ready for the allocation
// pass.
func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opt.Run(p, opt.Options{})
	if _, err := regalloc.Run(p); err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	return p
}

const pairSrc = `
float a[16] = {1.0};
float b[16] = {2.0};
float y[16];
void main() {
	int i;
	for (i = 0; i < 16; i++) {
		y[i] = a[i] * b[i];
	}
}
`

const dupSrc = `
float s[32] = {1.0};
float R[8];
void main() {
	int m;
	int i;
	for (m = 0; m < 8; m++) {
		float acc = 0.0;
		int lim = 32 - m;
		for (i = 0; i < lim; i++) {
			acc += s[i] * s[i + m];
		}
		R[m] = acc;
	}
	s[0] = R[0];
}
`

func globalByName(p *ir.Program, name string) *ir.Symbol {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

func TestSingleBankMode(t *testing.T) {
	p := build(t, pairSrc)
	res, err := alloc.Run(p, alloc.Options{Mode: alloc.SingleBank})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Symbols() {
		if s.Bank != machine.BankX {
			t.Errorf("%s in bank %v under single-bank", s, s.Bank)
		}
	}
	if res.GlobalY != 0 || res.StackY != 0 {
		t.Errorf("bank Y should be empty: %+v", res)
	}
	if res.Ports != machine.PortsBanked {
		t.Error("single-bank should use banked ports")
	}
}

func TestCBSeparatesPairedArrays(t *testing.T) {
	p := build(t, pairSrc)
	res, err := alloc.Run(p, alloc.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	a, b := globalByName(p, "a"), globalByName(p, "b")
	if a.Bank == b.Bank {
		t.Errorf("a and b in the same bank (%v); graph:\n%s\npartition:\n%s",
			a.Bank, res.Graph, res.Part)
	}
}

func TestIdealMode(t *testing.T) {
	p := build(t, pairSrc)
	res, err := alloc.Run(p, alloc.Options{Mode: alloc.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ports != machine.PortsDualPorted {
		t.Fatal("ideal mode must use dual-ported memory")
	}
}

func TestDuplicationMode(t *testing.T) {
	p := build(t, dupSrc)
	res, err := alloc.Run(p, alloc.Options{Mode: alloc.CBDup})
	if err != nil {
		t.Fatal(err)
	}
	s := globalByName(p, "s")
	if !s.Duplicated || s.Bank != machine.BankBoth {
		t.Fatalf("s should be duplicated, got bank %v", s.Bank)
	}
	if res.DupStores == 0 {
		t.Fatal("no coherence stores inserted")
	}
	// Every store to s must have a Y-bank twin.
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for _, op := range blk.Ops {
				if op.Kind == ir.OpStore && op.Sym == s {
					if op.DupPair == nil {
						t.Fatalf("store to duplicated %s lacks a pair", s)
					}
					if op.Bank == op.DupPair.Bank {
						t.Fatal("pair halves must target different banks")
					}
				}
				if op.Kind == ir.OpLoad && op.Sym == s && op.Bank != machine.BankBoth {
					t.Fatal("loads from duplicated symbols must stay BankBoth")
				}
			}
		}
	}
}

func TestFullDuplication(t *testing.T) {
	p := build(t, pairSrc)
	res, err := alloc.Run(p, alloc.Options{Mode: alloc.FullDup})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Symbols() {
		if !s.Duplicated {
			t.Errorf("%s not duplicated under full duplication", s)
		}
	}
	if res.DupWords == 0 || res.GlobalX != 0 || res.GlobalY != 0 {
		t.Errorf("layout wrong: %+v", res)
	}
}

func TestSaveSlotsAlternate(t *testing.T) {
	p := build(t, `
int r;
int helper(int x) {
	int a = x * 2;
	int b = a + 3;
	int c = b * a;
	return c;
}
void main() { r = helper(7); }
`)
	if _, err := alloc.Run(p, alloc.Options{Mode: alloc.CB}); err != nil {
		t.Fatal(err)
	}
	f := p.Func("helper")
	want := machine.BankX
	n := 0
	for _, s := range f.Locals {
		if !s.Save {
			continue
		}
		if s.Bank != want {
			t.Fatalf("save slot %s in bank %v, want %v", s.Name, s.Bank, want)
		}
		want = want.Other()
		n++
	}
	if n < 2 {
		t.Fatalf("expected several save slots, found %d", n)
	}
}

// TestLayoutNoOverlap: within each bank, allocated intervals must be
// disjoint, and duplicated symbols occupy equal addresses in both
// banks before everything else.
func TestLayoutNoOverlap(t *testing.T) {
	for _, mode := range []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBDup, alloc.FullDup, alloc.Ideal,
	} {
		p := build(t, dupSrc)
		res, err := alloc.Run(p, alloc.Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		type span struct{ lo, hi int }
		var xs, ys []span
		for _, s := range p.Symbols() {
			sp := span{s.Addr, s.Addr + s.Size}
			switch s.Bank {
			case machine.BankX:
				xs = append(xs, sp)
			case machine.BankY:
				ys = append(ys, sp)
			case machine.BankBoth:
				xs = append(xs, sp)
				ys = append(ys, sp)
				if s.Addr >= res.DupWords {
					t.Errorf("%v: duplicated %s outside the duplicated region", mode, s)
				}
			}
		}
		for _, spans := range [][]span{xs, ys} {
			for i := range spans {
				for j := i + 1; j < len(spans); j++ {
					a, b := spans[i], spans[j]
					if a == b {
						continue // the two views of one duplicated symbol
					}
					if a.lo < b.hi && b.lo < a.hi {
						t.Errorf("%v: overlapping spans %v and %v", mode, a, b)
					}
				}
			}
		}
	}
}

// TestMemOpsTagged: after allocation every memory operation carries a
// concrete bank tag consistent with its symbol.
func TestMemOpsTagged(t *testing.T) {
	p := build(t, dupSrc)
	if _, err := alloc.Run(p, alloc.Options{Mode: alloc.CBDup}); err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for _, op := range blk.Ops {
				if !op.IsMem() {
					continue
				}
				if op.Bank == machine.BankNone {
					t.Fatalf("untagged memory op %v", op)
				}
				if !op.Sym.Duplicated && op.Bank != op.Sym.Bank {
					t.Fatalf("op %v tagged %v but symbol lives in %v", op, op.Bank, op.Sym.Bank)
				}
			}
		}
	}
}

// TestInterruptSafePairs marks duplicated-store pairs atomic.
func TestInterruptSafePairs(t *testing.T) {
	p := build(t, dupSrc)
	if _, err := alloc.Run(p, alloc.Options{Mode: alloc.CBDup, InterruptSafe: true}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for _, op := range blk.Ops {
				if op.DupPair != nil {
					found = true
					if !op.Atomic || !op.DupPair.Atomic {
						t.Fatal("duplicated pair not atomic under InterruptSafe")
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no duplicated pairs found")
	}
}

// TestModeStringsRoundTrip is a quick-check that Mode string names are
// unique (they key CLI flags and reports).
func TestModeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled, alloc.CBDup,
		alloc.FullDup, alloc.Ideal,
	} {
		s := m.String()
		if seen[s] {
			t.Fatalf("duplicate mode name %q", s)
		}
		seen[s] = true
	}
	if !alloc.CB.Partitioned() || alloc.Ideal.Partitioned() {
		t.Error("Partitioned() misclassifies modes")
	}
}

// TestLayoutAddressesDeterministic: running the pass twice on
// identically-built programs yields identical addresses (required for
// reproducible experiments).
func TestLayoutAddressesDeterministic(t *testing.T) {
	f := func(seed uint8) bool {
		p1 := buildQuiet(dupSrc)
		p2 := buildQuiet(dupSrc)
		if p1 == nil || p2 == nil {
			return false
		}
		if _, err := alloc.Run(p1, alloc.Options{Mode: alloc.CBDup}); err != nil {
			return false
		}
		if _, err := alloc.Run(p2, alloc.Options{Mode: alloc.CBDup}); err != nil {
			return false
		}
		s1, s2 := p1.Symbols(), p2.Symbols()
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if s1[i].Name != s2[i].Name || s1[i].Addr != s2[i].Addr || s1[i].Bank != s2[i].Bank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func buildQuiet(src string) *ir.Program {
	file, err := minic.Parse(src)
	if err != nil {
		return nil
	}
	if err := minic.Analyze(file); err != nil {
		return nil
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		return nil
	}
	opt.Run(p, opt.Options{})
	if _, err := regalloc.Run(p); err != nil {
		return nil
	}
	return p
}
