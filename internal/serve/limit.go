package serve

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client (keyed by the
// host part of its RemoteAddr, so one client's ephemeral ports share a
// bucket) accrues rate tokens per second up to burst, and each request
// spends one. It exists to keep a single aggressive client from
// monopolizing the admission queue — capacity protection is the
// queue's job (ErrShed), fairness is this one's.
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// clientKey reduces a RemoteAddr to its host; an address that does not
// parse (unix sockets, tests) is its own key.
func clientKey(remoteAddr string) string {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		return remoteAddr
	}
	return host
}

// allow spends one token from key's bucket, reporting false when the
// bucket is dry.
func (l *rateLimiter) allow(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[key]
	if !ok {
		// The table grows one entry per distinct client; shed the
		// long-idle ones opportunistically before admitting a new one.
		if len(l.buckets) >= 4096 {
			for k, old := range l.buckets {
				if now.Sub(old.last) > time.Minute {
					delete(l.buckets, k)
				}
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens = min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
