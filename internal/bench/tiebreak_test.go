package bench

import (
	"maps"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/core"
	"dualbank/internal/machine"
	"dualbank/internal/pipeline"
)

// graphOf compiles p under CB and returns its interference graph.
func graphOf(t *testing.T, p Program) *core.Graph {
	t.Helper()
	c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return c.Alloc.Graph
}

// TestFMZeroPassReplaysGreedy pins the property the certified gap
// report's determinism rests on: PartitionFMPasses(0) is the greedy
// walk replayed through gain buckets, sharing the canonical
// first-reference tie-break — identical cost, identical bank
// assignment, and identical move trace on every benchmark graph. A
// divergence here would make "greedy" mean different things in
// different reports.
func TestFMZeroPassReplaysGreedy(t *testing.T) {
	progs := append(Kernels(), Applications()...)
	if len(progs) != 23 {
		t.Fatalf("suite has %d benchmarks, want 23", len(progs))
	}
	for _, p := range progs {
		g := graphOf(t, p)
		greedy := g.Partition()
		replay := g.PartitionFMPasses(0)
		if replay.Cost != greedy.Cost {
			t.Errorf("%s: FMPasses(0) cost %d, greedy %d", p.Name, replay.Cost, greedy.Cost)
			continue
		}
		if replay.String() != greedy.String() {
			t.Errorf("%s: FMPasses(0) assignment diverges from greedy:\n%s\nvs\n%s",
				p.Name, replay, greedy)
		}
		if len(replay.Trace) != len(greedy.Trace) {
			t.Errorf("%s: FMPasses(0) trace %v, greedy %v", p.Name, replay.Trace, greedy.Trace)
			continue
		}
		for i := range replay.Trace {
			if replay.Trace[i] != greedy.Trace[i] {
				t.Errorf("%s: FMPasses(0) trace %v, greedy %v", p.Name, replay.Trace, greedy.Trace)
				break
			}
		}
	}
}

// TestAnnealArmDeterministic: the annealing arm the gap report scores
// is a pure function of (graph, seed) — repeated runs must agree
// exactly, or BENCH_gaps.json would drift between CI runs.
func TestAnnealArmDeterministic(t *testing.T) {
	for _, p := range append(Kernels(), Applications()...) {
		g := graphOf(t, p)
		a, b := g.PartitionAnneal(1), g.PartitionAnneal(1)
		if a.Cost != b.Cost || a.String() != b.String() {
			t.Errorf("%s: anneal(1) is not deterministic:\n%s\nvs\n%s", p.Name, a, b)
		}
	}
}

// TestExactArmNeverWorse extends the partitioner differential to the
// certified exact arm across the full suite: never a worse cut than
// any heuristic, reachable through the same pipeline surface.
func TestExactArmNeverWorse(t *testing.T) {
	for _, p := range append(Kernels(), Applications()...) {
		compile := func(m core.Method) (int64, map[string]machine.Bank) {
			c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{
				Mode: alloc.CB, Partitioner: m,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", p.Name, m, err)
			}
			banks := make(map[string]machine.Bank)
			for _, s := range c.IR.Symbols() {
				banks[s.Name] = s.Bank
			}
			return c.Alloc.Part.Cost, banks
		}
		exactCost, exactBanks := compile(core.MethodExact)
		for _, m := range []core.Method{core.MethodGreedy, core.MethodFM, core.MethodKL, core.MethodAnneal} {
			if cost, _ := compile(m); exactCost > cost {
				t.Errorf("%s: exact cut cost %d worse than %v %d", p.Name, exactCost, m, cost)
			}
		}
		// The arm must also be stable through the pipeline: a second
		// compile gives the identical allocation.
		again, againBanks := compile(core.MethodExact)
		if again != exactCost || !maps.Equal(exactBanks, againBanks) {
			t.Errorf("%s: exact arm not deterministic through the pipeline", p.Name)
		}
	}
}
