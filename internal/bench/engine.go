package bench

import "fmt"

// Engine selects which simulation engine executes a measurement. All
// three produce identical cycle counts, bandwidth counters, and memory
// images — the differential suite pins them to each other — so the
// choice trades debuggability against throughput, never correctness.
// The zero value is EngineCompiled: the production default throughout
// the harness, the explorer, and the service.
type Engine int8

const (
	// EngineCompiled is the threaded-code engine: one lowering per
	// compile, specialized closures per operation, memory arenas sized
	// to the program. The fastest path and the default.
	EngineCompiled Engine = iota
	// EngineFast is the predecoded engine: dense operation records with
	// a per-operation switch dispatch and full-size bank images.
	EngineFast
	// EngineMachine is the interpretive reference engine with the
	// debugging hooks (tracing, per-instruction callbacks, port
	// assertions) — the oracle the other two are pinned against.
	EngineMachine
)

func (e Engine) String() string {
	switch e {
	case EngineCompiled:
		return "compiled"
	case EngineFast:
		return "fast"
	case EngineMachine:
		return "machine"
	}
	return fmt.Sprintf("Engine(%d)", int8(e))
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "compiled":
		return EngineCompiled, nil
	case "fast":
		return EngineFast, nil
	case "machine":
		return EngineMachine, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want compiled, fast, or machine)", s)
}
