package alloc

import (
	"fmt"

	"dualbank/internal/core"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// This file is the k-way generalization of the allocation pass for
// non-default machine.BankSpec geometries: the same pipeline — assign
// banks, expand duplicated stores, tag memory operations, lay out
// addresses — over k banks instead of two. The default 2-bank spec
// never reaches this code (Run branches before it), so the historical
// allocation stays bit for bit intact.

// runK performs data allocation for a non-default bank spec.
func runK(p *ir.Program, opts Options) (*Result, error) {
	spec := opts.Spec.Norm()
	k := spec.Banks
	res := &Result{Mode: opts.Mode, Ports: machine.PortsBanked, Spec: opts.Spec}

	perm := opts.BankPerm
	if perm == nil {
		perm = make([]int, k)
		for i := range perm {
			perm[i] = i
		}
		if opts.SwapBanks {
			perm[0], perm[1] = 1, 0
		}
	}
	if err := checkPerm(perm, k); err != nil {
		return nil, err
	}
	bankAt := func(b int) machine.Bank { return machine.BankAt(perm[b]) }

	switch opts.Mode {
	case SingleBank:
		for _, s := range p.Symbols() {
			s.Bank = bankAt(0)
			s.Duplicated = false
		}
	case Ideal, LowOrder:
		// Both modes are defined against the paper's fixed 2-bank
		// machine: Ideal is its dual-ported upper bound, LowOrder its
		// address-interleaved rival. Multi-port upper bounds on wider
		// machines are expressed as PortsPerBank > 1 instead.
		return nil, fmt.Errorf("alloc: mode %v requires the default 2-bank machine (spec %s)",
			opts.Mode, spec)
	case FullDup:
		for _, s := range p.Symbols() {
			s.Bank = machine.BankBoth
			s.Duplicated = true
		}
	case CB, CBProfiled, CBDup:
		policy := core.WeightStatic
		if opts.Mode == CBProfiled || opts.Profiled {
			policy = core.WeightProfiled
		}
		sc := opts.Scanner
		if sc == nil {
			sc = new(core.Scanner)
		}
		g := sc.BuildGraph(p, policy)
		fmPasses := -1
		if opts.FMPasses > 0 {
			fmPasses = opts.FMPasses
		} else if opts.FMPasses < 0 {
			fmPasses = 0
		}
		part := g.PartitionK(k, opts.Method, fmPasses)
		res.Graph, res.PartK = g, part
		for b, set := range part.Sets {
			for _, s := range set {
				s.Bank = bankAt(b)
				s.Duplicated = false
			}
		}
		if opts.Mode == CBDup {
			for _, s := range g.Nodes {
				if !s.IsArray() {
					continue
				}
				if opts.DupFilter != nil {
					if !opts.DupFilter(s) {
						continue
					}
				} else if !g.DupMarks[s] {
					continue
				}
				s.Bank = machine.BankBoth
				s.Duplicated = true
			}
		}
		// Save/restore slots rotate through the banks mechanically, in
		// permutation order — the k-ary form of §3.1's alternation.
		for _, f := range p.Funcs {
			next := 0
			for _, s := range f.Locals {
				if !s.Save {
					continue
				}
				s.Bank = bankAt(next)
				s.Duplicated = false
				next = (next + 1) % k
			}
		}
	default:
		return nil, fmt.Errorf("alloc: unknown mode %v", opts.Mode)
	}

	if err := insertCoherenceStoresK(p, opts, res, perm); err != nil {
		return nil, err
	}
	tagMemOps(p)
	if err := layoutK(p, res, k); err != nil {
		return nil, err
	}
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("alloc: %w", err)
	}
	return res, nil
}

// checkPerm validates a bank permutation for k banks.
func checkPerm(perm []int, k int) error {
	if len(perm) != k {
		return fmt.Errorf("alloc: bank permutation %v has %d entries, want %d", perm, len(perm), k)
	}
	seen := make([]bool, k)
	for _, b := range perm {
		if b < 0 || b >= k || seen[b] {
			return fmt.Errorf("alloc: bank permutation %v is not a permutation of 0..%d", perm, k-1)
		}
		seen[b] = true
	}
	return nil
}

// insertCoherenceStoresK expands every store to a duplicated symbol
// into k stores: the original targets the permutation's first bank and
// k-1 clones, inserted immediately after it, target the remaining
// banks in permutation order. Each carries a distinct single-bank tag,
// so the dependence graph lets all k issue in one long instruction
// when enough memory units are free.
func insertCoherenceStoresK(p *ir.Program, opts Options, res *Result, perm []int) error {
	k := len(perm)
	if opts.InterruptSafe && k > 2 {
		// The store-lock discipline is a pairwise instruction-bundling
		// contract; an atomic k-way bundle is not modeled.
		return fmt.Errorf("alloc: interrupt-safe duplication requires the 2-bank machine (%d banks)", k)
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			var out []*ir.Op
			for _, op := range b.Ops {
				if op.Kind == ir.OpStore && op.Sym.Duplicated {
					op.Bank = machine.BankAt(perm[0])
					out = append(out, op)
					for c := 1; c < k; c++ {
						clone := &ir.Op{
							Kind: ir.OpStore,
							Args: op.Args,
							Idx:  op.Idx,
							Sym:  op.Sym,
							Bank: machine.BankAt(perm[c]),
						}
						if c == 1 {
							op.DupPair, clone.DupPair = clone, op
							if opts.InterruptSafe {
								op.Atomic, clone.Atomic = true, true
							}
						}
						out = append(out, clone)
						res.DupStores++
					}
					continue
				}
				out = append(out, op)
			}
			b.Ops = out
		}
	}
	for _, s := range p.Symbols() {
		if s.Duplicated {
			res.Duplicated = append(res.Duplicated, s)
		}
	}
	return nil
}

// layoutK assigns word addresses over k banks: first the duplicated
// region (equal addresses in every bank), then each bank's globals,
// then the static stack frames, with one cursor per bank.
func layoutK(p *ir.Program, res *Result, k int) error {
	cursorDup := 0
	for _, s := range p.Symbols() {
		if s.Duplicated {
			s.Addr = cursorDup
			cursorDup += s.Size
		}
	}
	res.DupWords = cursorDup

	cur := make([]int, k)
	for b := range cur {
		cur[b] = cursorDup
	}
	bankOf := func(s *ir.Symbol) int {
		if i := s.Bank.Index(); i >= 0 && i < k {
			return i
		}
		return 0 // unassigned data lives in bank 0 (baseline layout)
	}
	place := func(s *ir.Symbol) {
		b := bankOf(s)
		s.Addr = cur[b]
		cur[b] += s.Size
	}
	for _, s := range p.Globals {
		if !s.Duplicated {
			place(s)
		}
	}
	res.GlobalBank = make([]int, k)
	for b := range cur {
		res.GlobalBank[b] = cur[b] - cursorDup
	}

	afterGlobals := append([]int(nil), cur...)
	for _, f := range p.Funcs {
		fx, fy := 0, 0
		for _, s := range f.Locals {
			if s.Duplicated {
				continue
			}
			switch bankOf(s) {
			case 0:
				fx += s.Size
			case 1:
				fy += s.Size
			}
		}
		f.FrameWordsX, f.FrameWordsY = fx, fy
		for _, s := range f.Locals {
			if !s.Duplicated {
				place(s)
			}
		}
	}
	res.StackBank = make([]int, k)
	for b := range cur {
		res.StackBank[b] = cur[b] - afterGlobals[b]
	}
	res.GlobalX, res.GlobalY = res.GlobalBank[0], res.GlobalBank[1]
	res.StackX, res.StackY = res.StackBank[0], res.StackBank[1]

	for b, c := range cur {
		if c > machine.BankWords {
			return fmt.Errorf("alloc: data exceeds bank %d capacity (%d words, capacity %d)",
				b, c, machine.BankWords)
		}
	}
	return nil
}
