package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"dualbank/internal/alloc"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

// This file is the simulator micro-benchmark: per-engine throughput
// (ns/run, ns/cycle) and allocation rates over a fixed benchmark
// suite, reported by `dspbench -simbench` and regression-checked in CI
// against the committed BENCH_sim.json baseline via -simcheck.
//
// Each engine is measured on its production dispatch path:
//
//   - machine:  sim.NewMachine + Run per run (the reference
//     interpreter allocates full banks every time),
//   - fast:     sim.Predecode + NewMachine + Run per run (RunFastCtx
//     re-predecodes per measurement),
//   - compiled: sim.Compile once, then Batch.Run per run — the
//     steady-state the harness and explorer reach, where lowering and
//     arenas amortize across a batch. The one-time lowering cost is
//     reported separately as SetupNs.

// SimBenchSuite is the default micro-benchmark suite: the satellite
// kernels the paper's figures lean on hardest (small, hot loops where
// per-run setup dominates) plus two larger programs (fft_256, lpc)
// where execution dominates.
var SimBenchSuite = []string{
	"fir_32_1", "iir_1_1", "lmsfir_8_1", "mult_4_4", "fft_256", "lpc",
}

// SimBenchRow is one (benchmark, engine) throughput measurement.
type SimBenchRow struct {
	Bench  string `json:"bench"`
	Engine string `json:"engine"`
	// Cycles is the simulated cycle count (identical across engines by
	// the differential pinning).
	Cycles int64 `json:"cycles"`
	// Runs is how many runs the timed loop executed.
	Runs int `json:"runs"`
	// NsPerRun is wall-clock nanoseconds per simulation on the engine's
	// production path; NsPerCycle divides it by the simulated cycles.
	NsPerRun   float64 `json:"ns_per_run"`
	NsPerCycle float64 `json:"ns_per_cycle"`
	// AllocsPerRun is the heap-allocation count per run (Mallocs delta
	// over the timed loop).
	AllocsPerRun float64 `json:"allocs_per_run"`
	// SetupNs is one-time per-benchmark engine setup that the timed
	// loop amortizes away (threaded-code lowering for the compiled
	// engine); zero for engines whose setup is per-run by construction.
	SetupNs float64 `json:"setup_ns,omitempty"`
}

// SimBench measures every engine on every named benchmark, running
// each timed loop for at least minTime (and at least three runs).
// Rows come back grouped by benchmark in input order, engines in
// machine, fast, compiled order.
func SimBench(names []string, minTime time.Duration) ([]SimBenchRow, error) {
	if minTime <= 0 {
		minTime = 100 * time.Millisecond
	}
	var rows []SimBenchRow
	cc := new(pipeline.Compiler)
	for _, name := range names {
		p, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("simbench: unknown benchmark %q", name)
		}
		c, err := cc.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB})
		if err != nil {
			return nil, fmt.Errorf("simbench: %s: %w", name, err)
		}
		sched := c.Sched

		// One compiled run up front pins the cycle count for the whole
		// row group.
		cp, err := sim.Compile(sched)
		if err != nil {
			return nil, fmt.Errorf("simbench: %s: %w", name, err)
		}
		ref := cp.NewMachine()
		if err := ref.Run(); err != nil {
			return nil, fmt.Errorf("simbench: %s: %w", name, err)
		}
		cycles := ref.CycleCount()

		engines := []struct {
			engine string
			setup  func() (func() error, float64, error)
		}{
			{EngineMachine.String(), func() (func() error, float64, error) {
				return func() error { return sim.NewMachine(sched).Run() }, 0, nil
			}},
			{EngineFast.String(), func() (func() error, float64, error) {
				return func() error {
					pd, err := sim.Predecode(sched)
					if err != nil {
						return err
					}
					return pd.NewMachine().Run()
				}, 0, nil
			}},
			{EngineCompiled.String(), func() (func() error, float64, error) {
				lowerStart := time.Now()
				cp, err := sim.Compile(sched)
				if err != nil {
					return nil, 0, err
				}
				setupNs := float64(time.Since(lowerStart).Nanoseconds())
				var b sim.Batch
				ctx := context.Background()
				return func() error {
					_, err := b.Run(ctx, cp)
					return err
				}, setupNs, nil
			}},
		}
		for _, e := range engines {
			run, setupNs, err := e.setup()
			if err != nil {
				return nil, fmt.Errorf("simbench: %s/%s: %w", name, e.engine, err)
			}
			row, err := timeLoop(run, minTime)
			if err != nil {
				return nil, fmt.Errorf("simbench: %s/%s: %w", name, e.engine, err)
			}
			row.Bench = name
			row.Engine = e.engine
			row.Cycles = cycles
			row.NsPerCycle = row.NsPerRun / float64(cycles)
			row.SetupNs = setupNs
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// timeLoop runs fn for at least minTime (and three runs) after one
// warm-up, returning the timing and allocation fields of a row.
func timeLoop(fn func() error, minTime time.Duration) (SimBenchRow, error) {
	if err := fn(); err != nil {
		return SimBenchRow{}, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	runs := 0
	start := time.Now()
	for runs < 3 || time.Since(start) < minTime {
		if err := fn(); err != nil {
			return SimBenchRow{}, err
		}
		runs++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return SimBenchRow{
		Runs:         runs,
		NsPerRun:     float64(elapsed.Nanoseconds()) / float64(runs),
		AllocsPerRun: float64(ms1.Mallocs-ms0.Mallocs) / float64(runs),
	}, nil
}

// SimSpeedups returns each benchmark's compiled-over-fast throughput
// ratio (fast ns/run divided by compiled ns/run; higher is better).
// The ratio is measured within one process on one machine, so unlike
// raw ns/run it transfers across hosts — the CI regression check
// compares ratios, not nanoseconds.
func SimSpeedups(rows []SimBenchRow) map[string]float64 {
	ns := make(map[string]map[string]float64)
	for _, r := range rows {
		if ns[r.Bench] == nil {
			ns[r.Bench] = make(map[string]float64)
		}
		ns[r.Bench][r.Engine] = r.NsPerRun
	}
	out := make(map[string]float64, len(ns))
	for b, m := range ns {
		if m["fast"] > 0 && m["compiled"] > 0 {
			out[b] = m["fast"] / m["compiled"]
		}
	}
	return out
}

// simCheckFloor is the contracted compiled-engine speedup on hot
// kernels: a measurement above it is never a regression, however far
// it sits below a (noisy) triple-digit baseline ratio.
const simCheckFloor = 10.0

// SimCheck compares current measurements against a committed baseline:
// a benchmark regresses when its compiled-over-fast speedup falls more
// than tolerance (a fraction, e.g. 0.10) below the baseline's AND
// below the 10x kernel contract. The floor keeps the check meaningful
// across hosts — small kernels measure in the hundreds-of-x range
// where run-to-run ratios swing freely, but any real regression
// (losing the amortization or re-introducing per-run work) crashes
// straight through 10x. Baselines already under the floor (the large
// programs) are held to the tolerance band alone. Returns one line per
// regression, sorted by benchmark; benchmarks present in only one row
// set are skipped.
func SimCheck(current, baseline []SimBenchRow, tolerance float64) []string {
	cur, base := SimSpeedups(current), SimSpeedups(baseline)
	var fails []string
	for b, want := range base {
		got, ok := cur[b]
		if !ok {
			continue
		}
		floor := simCheckFloor
		if want < floor {
			floor = want
		}
		if got < want*(1-tolerance) && got < floor {
			fails = append(fails, fmt.Sprintf(
				"%s: compiled/fast speedup %.2fx fell below baseline %.2fx - %.0f%% tolerance",
				b, got, want, tolerance*100))
		}
	}
	sort.Strings(fails)
	return fails
}

// RenderSimBench formats rows as an aligned text table with per-bench
// compiled-over-fast speedups.
func RenderSimBench(rows []SimBenchRow) string {
	var sb strings.Builder
	speedups := SimSpeedups(rows)
	sb.WriteString("Simulator throughput by engine (production dispatch paths)\n")
	fmt.Fprintf(&sb, "%-12s %-9s %10s %8s %12s %10s %10s\n",
		"bench", "engine", "cycles", "runs", "ns/run", "ns/cycle", "allocs/run")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-9s %10d %8d %12.0f %10.2f %10.1f",
			r.Bench, r.Engine, r.Cycles, r.Runs, r.NsPerRun, r.NsPerCycle, r.AllocsPerRun)
		if r.Engine == "compiled" {
			if s, ok := speedups[r.Bench]; ok {
				fmt.Fprintf(&sb, "  (%.1fx vs fast)", s)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
