package cluster_test

import (
	"context"
	"os"
	"testing"
	"time"

	"dualbank/internal/cluster"
	"dualbank/internal/faultinject"
	"dualbank/internal/serve"
)

// TestClusterScaling is the scaling acceptance gate, run with
// DSP_SCALING=1 (the CI cluster job sets it; it is too heavy for every
// local test run). In-process nodes share one machine's CPU, so real
// compute cannot scale with node count; instead every node runs under
// an injected 10ms service time — per-node capacity becomes
// workers/serviceTime, the model a fleet of real machines would have —
// and the warm benchmark matrix is driven uniform and zipf. The gates:
// a 4-node fleet sustains at least 2.5x the single node's warm
// throughput, and zipf skew (with hot-key replication absorbing the
// head) lands within 30% of uniform.
func TestClusterScaling(t *testing.T) {
	if os.Getenv("DSP_SCALING") != "1" {
		t.Skip("set DSP_SCALING=1 to run the scaling gate")
	}

	const workers = 8
	const serviceTime = 10 * time.Millisecond

	run := func(n int, skew string) float64 {
		seedBase := int64(100 * n)
		lc, err := cluster.StartLocal(cluster.LocalOptions{
			N: n, Replication: 2,
			StoreDir:     t.TempDir(),
			HotThreshold: 8,
			HotWindow:    time.Second,
			HotK:         16,
			Serve:        serve.Config{Workers: workers},
			Configure: func(i int, cfg *cluster.Config) {
				cfg.Serve.Fault = faultinject.New(faultinject.Profile{
					Seed:    seedBase + int64(i),
					Latency: 1.0, LatencyDur: serviceTime,
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer lc.Close()

		targets := make([]string, lc.N())
		for i := range targets {
			targets[i] = lc.URL(i)
		}
		// Warm pass: every distinct key computed once fleet-wide.
		warm, err := cluster.RunLoad(context.Background(), cluster.LoadOptions{
			Targets:     targets,
			Requests:    len(cluster.LoadBodies()),
			Concurrency: 32,
			Skew:        "sweep",
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Statuses[200] != warm.Requests {
			t.Fatalf("warm pass on %d nodes: %+v", n, warm)
		}
		rep, err := cluster.RunLoad(context.Background(), cluster.LoadOptions{
			Targets:     targets,
			Requests:    2000,
			Concurrency: 64,
			Skew:        skew,
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Statuses[200] != rep.Requests {
			t.Fatalf("%s load on %d nodes: %+v", skew, n, rep)
		}
		t.Logf("%d nodes, %s: %.0f req/s (p50 %.1fms, p99 %.1fms)",
			n, skew, rep.Throughput, rep.P50Ms, rep.P99Ms)
		return rep.Throughput
	}

	single := run(1, "uniform")
	quadUniform := run(4, "uniform")
	quadZipf := run(4, "zipf")

	if quadUniform < 2.5*single {
		t.Errorf("4-node uniform throughput %.0f req/s < 2.5x single node %.0f req/s", quadUniform, single)
	}
	if quadZipf < 0.7*quadUniform {
		t.Errorf("4-node zipf throughput %.0f req/s < 70%% of uniform %.0f req/s — hot-key replication not absorbing the head", quadZipf, quadUniform)
	}
}
