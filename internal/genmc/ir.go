package genmc

import (
	"fmt"
	"strings"
)

// The generator's statement IR. Both backends — the MiniC renderer
// and the expected-output evaluator — walk these nodes in the same
// order, so the rendered program and the computed expectation are two
// views of one computation. The expression language is deliberately
// closed under safety: the only binary operators are the exact-wrap
// integer ops (+ - * & | ^), and every array subscript is built by
// maskedIndex, which ands the index with size-1 before use.

// array is one global int array.
type array struct {
	name string
	init []int32 // initial contents; the declaration embeds them
	out  bool    // declared zero-initialized (no data), written by the program
}

func (a *array) size() int { return len(a.init) }
func (a *array) mask() int32 {
	return int32(len(a.init) - 1)
}

// expr is an integer expression node.
type expr interface {
	emit(sb *strings.Builder)
	eval(st *state) int32
}

// intLit is a literal constant.
type intLit int32

func (l intLit) emit(sb *strings.Builder) {
	if l < 0 {
		fmt.Fprintf(sb, "(%d)", int32(l))
		return
	}
	fmt.Fprintf(sb, "%d", int32(l))
}
func (l intLit) eval(*state) int32 { return int32(l) }

// scalarRef reads a scalar variable (loop counter, accumulator, or
// chain pointer).
type scalarRef string

func (s scalarRef) emit(sb *strings.Builder) { sb.WriteString(string(s)) }
func (s scalarRef) eval(st *state) int32     { return st.scalars[string(s)] }

// load reads arr[idx]. The builder only constructs loads whose idx is
// masked into bounds.
type load struct {
	arr *array
	idx expr
}

func (l load) emit(sb *strings.Builder) {
	sb.WriteString(l.arr.name)
	sb.WriteByte('[')
	l.idx.emit(sb)
	sb.WriteByte(']')
}
func (l load) eval(st *state) int32 {
	return st.arrays[l.arr.name][l.idx.eval(st)]
}

// bin is a binary operation. Every op wraps identically in Go int32
// arithmetic and in the machine's evalIntBin, which is what makes the
// evaluator an exact oracle.
type bin struct {
	op   byte // one of + - * & | ^
	l, r expr
}

func (b bin) emit(sb *strings.Builder) {
	sb.WriteByte('(')
	b.l.emit(sb)
	sb.WriteByte(' ')
	sb.WriteByte(b.op)
	sb.WriteByte(' ')
	b.r.emit(sb)
	sb.WriteByte(')')
}

func (b bin) eval(st *state) int32 {
	return applyOp(b.op, b.l.eval(st), b.r.eval(st))
}

// applyOp is the evaluator's ALU: the exact-wrap int32 semantics of
// the machine's integer unit, restricted to the operator set the
// generator emits.
func applyOp(op byte, l, r int32) int32 {
	switch op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	case '&':
		return l & r
	case '|':
		return l | r
	case '^':
		return l ^ r
	}
	panic("genmc: unknown binary op " + string(op))
}

// stmt is a statement node.
type stmt interface {
	emitStmt(sb *strings.Builder, indent int)
	exec(st *state)
}

func pad(sb *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		sb.WriteByte('\t')
	}
}

// assignScalar is `name op= rhs;` (op 0 renders plain `=`).
type assignScalar struct {
	name string
	op   byte // 0 for =, else one of + - * & | ^ rendered as op=
	rhs  expr
}

func (a assignScalar) emitStmt(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString(a.name)
	if a.op != 0 {
		sb.WriteByte(' ')
		sb.WriteByte(a.op)
		sb.WriteString("= ")
	} else {
		sb.WriteString(" = ")
	}
	a.rhs.emit(sb)
	sb.WriteString(";\n")
}

func (a assignScalar) exec(st *state) {
	v := a.rhs.eval(st)
	if a.op != 0 {
		v = applyOp(a.op, st.scalars[a.name], v)
	}
	st.scalars[a.name] = v
}

// assignElem is `arr[idx] op= rhs;`.
type assignElem struct {
	arr *array
	idx expr
	op  byte
	rhs expr
}

func (a assignElem) emitStmt(sb *strings.Builder, indent int) {
	pad(sb, indent)
	load{arr: a.arr, idx: a.idx}.emit(sb)
	if a.op != 0 {
		sb.WriteByte(' ')
		sb.WriteByte(a.op)
		sb.WriteString("= ")
	} else {
		sb.WriteString(" = ")
	}
	a.rhs.emit(sb)
	sb.WriteString(";\n")
}

func (a assignElem) exec(st *state) {
	i := a.idx.eval(st)
	v := a.rhs.eval(st)
	if a.op != 0 {
		v = applyOp(a.op, st.arrays[a.arr.name][i], v)
	}
	st.arrays[a.arr.name][i] = v
}

// loop is `for (v = 0; v < n; v++) { body }` over a pre-declared
// scalar counter.
type loop struct {
	v    string
	n    int
	body []stmt
}

func (l loop) emitStmt(sb *strings.Builder, indent int) {
	pad(sb, indent)
	fmt.Fprintf(sb, "for (%s = 0; %s < %d; %s++) {\n", l.v, l.v, l.n, l.v)
	for _, s := range l.body {
		s.emitStmt(sb, indent+1)
	}
	pad(sb, indent)
	sb.WriteString("}\n")
}

func (l loop) exec(st *state) {
	for i := 0; i < l.n; i++ {
		st.scalars[l.v] = int32(i)
		for _, s := range l.body {
			s.exec(st)
		}
	}
	st.scalars[l.v] = int32(l.n)
}

// state is the evaluator's store.
type state struct {
	scalars map[string]int32
	arrays  map[string][]int32
}
