package pipeline_test

import (
	"testing"

	"dualbank/internal/bench"
	"dualbank/internal/pipeline"
)

// TestSelectiveDuplicationKeepsLpcSignal: for lpc, duplicating the
// frame buffer pays for itself, so the selective refinement keeps it
// and matches the plain Dup result.
func TestSelectiveDuplicationKeepsLpcSignal(t *testing.T) {
	p, _ := bench.ByName("lpc")
	res, err := pipeline.CompileSelective(p.Source, "lpc", pipeline.SelectiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no duplication candidates found for lpc")
	}
	if len(res.Chosen) != 1 || res.Chosen[0] != "s" {
		t.Fatalf("chosen = %v, want [s]; trials: %+v", res.Chosen, res.Trials)
	}
	m, err := res.Compiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles >= res.BaseCycles {
		t.Fatalf("selective duplication did not improve lpc: %d vs %d", m.Cycles, res.BaseCycles)
	}
}

// TestSelectiveDuplicationRejectsSpectralBuffers: for spectral,
// duplicating the FFT frame arrays hurts performance, so the
// refinement must decline every candidate and fall back to plain CB.
func TestSelectiveDuplicationRejectsSpectralBuffers(t *testing.T) {
	p, _ := bench.ByName("spectral")
	res, err := pipeline.CompileSelective(p.Source, "spectral", pipeline.SelectiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("spectral should have duplication candidates")
	}
	if len(res.Chosen) != 0 {
		t.Fatalf("chosen = %v, want none (duplication hurts spectral)", res.Chosen)
	}
	// The final program equals plain CB.
	if len(res.Compiled.Alloc.Duplicated) != 0 {
		t.Fatalf("final program still duplicates %v", res.Compiled.Alloc.Duplicated)
	}
}

// TestSelectiveDuplicationCostBudget: a tight designer cost budget
// vetoes even profitable duplication (§4.2's area constraint).
func TestSelectiveDuplicationCostBudget(t *testing.T) {
	p, _ := bench.ByName("lpc")
	res, err := pipeline.CompileSelective(p.Source, "lpc", pipeline.SelectiveOptions{MaxCostIncrease: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 0 {
		t.Fatalf("chosen = %v despite 1%% cost budget", res.Chosen)
	}
	for _, tr := range res.Trials {
		if tr.Kept {
			t.Fatalf("trial kept under budget: %+v", tr)
		}
	}
}

// TestSelectiveDuplicationMinGain: a high gain threshold rejects
// marginal candidates.
func TestSelectiveDuplicationMinGain(t *testing.T) {
	p, _ := bench.ByName("lpc")
	res, err := pipeline.CompileSelective(p.Source, "lpc", pipeline.SelectiveOptions{MinGain: 0.90})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 0 {
		t.Fatalf("chosen = %v despite 90%% gain threshold", res.Chosen)
	}
}
