package bench

import (
	"context"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/machine"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

// This file is the N=2 equivalence wall: the generalized N-bank /
// multi-port machinery must reproduce the historical dual-bank system
// bit-for-bit when the bank spec is the classic 2×1 geometry. The wall
// compares, for every Table 1/2 benchmark under every allocation mode
// and every simulation engine, a compilation with the zero-value
// BankSpec (the historical entry point) against one with the spec
// spelled out explicitly — five counters and the complete final bank
// images must match. Any divergence means the generalization changed
// the classic machine, which is forbidden.

// equivRun captures one engine's observable outcome: the five pinned
// counters and the full per-bank memory images.
type equivRun struct {
	cycles, ops, mem, dual, conf int64
	banks                        [][]uint32
}

func captureRef(t *testing.T, c *pipeline.Compiled) equivRun {
	t.Helper()
	m := sim.NewMachine(c.Sched)
	if err := m.Run(); err != nil {
		t.Fatalf("reference: %v", err)
	}
	return equivRun{m.Cycles, m.OpsExecuted, m.MemAccesses, m.DualMemCycles, m.BankConflicts, m.Banks}
}

func captureFast(t *testing.T, c *pipeline.Compiled) equivRun {
	t.Helper()
	pd, err := sim.Predecode(c.Sched)
	if err != nil {
		t.Fatalf("predecode: %v", err)
	}
	m := pd.NewMachine()
	if err := m.Run(); err != nil {
		t.Fatalf("fast: %v", err)
	}
	return equivRun{m.Cycles, m.OpsExecuted, m.MemAccesses, m.DualMemCycles, m.BankConflicts, m.Banks}
}

func captureCompiled(t *testing.T, c *pipeline.Compiled, batch *sim.Batch) equivRun {
	t.Helper()
	cp, err := sim.Compile(c.Sched)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	m, err := batch.Run(context.Background(), cp)
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	// The batch recycles its arenas, so copy the images out before the
	// next engine run reuses them.
	banks := make([][]uint32, len(m.Banks))
	for b := range m.Banks {
		banks[b] = append([]uint32(nil), m.Banks[b]...)
	}
	return equivRun{m.Cycles, m.OpsExecuted, m.MemAccesses, m.DualMemCycles, m.BankConflicts, banks}
}

// sameRun compares two engine outcomes counter for counter and word
// for word. The compiled engine's arenas cover only the used prefix of
// each bank, so image comparison runs over the shorter image and then
// requires the longer one to be zero beyond it — the same discipline
// the engine differential suite uses.
func sameRun(t *testing.T, label string, a, b equivRun) {
	t.Helper()
	type ctr struct {
		name string
		x, y int64
	}
	for _, c := range []ctr{
		{"cycles", a.cycles, b.cycles},
		{"ops executed", a.ops, b.ops},
		{"mem accesses", a.mem, b.mem},
		{"dual-mem cycles", a.dual, b.dual},
		{"bank conflicts", a.conf, b.conf},
	} {
		if c.x != c.y {
			t.Errorf("%s: %s: zero-spec %d, explicit-spec %d", label, c.name, c.x, c.y)
		}
	}
	if len(a.banks) != len(b.banks) {
		t.Fatalf("%s: %d banks vs %d", label, len(a.banks), len(b.banks))
	}
	for bank := range a.banks {
		ab, bb := a.banks[bank], b.banks[bank]
		n := len(ab)
		if len(bb) < n {
			n = len(bb)
		}
		for i := 0; i < n; i++ {
			if ab[i] != bb[i] {
				t.Fatalf("%s: bank %s word %#x: zero-spec %#x, explicit-spec %#x",
					label, machine.BankAt(bank), i, ab[i], bb[i])
			}
		}
		for i := n; i < len(ab); i++ {
			if ab[i] != 0 {
				t.Fatalf("%s: bank %s word %#x nonzero beyond shorter image", label, machine.BankAt(bank), i)
			}
		}
		for i := n; i < len(bb); i++ {
			if bb[i] != 0 {
				t.Fatalf("%s: bank %s word %#x nonzero beyond shorter image", label, machine.BankAt(bank), i)
			}
		}
	}
}

// TestDefaultSpecEquivalenceWall runs the full 23-benchmark × 7-mode ×
// 3-engine matrix twice — once through the historical zero-value
// options and once with the classic geometry spelled out as an
// explicit BankSpec — and requires bit-for-bit agreement on all five
// counters and the complete bank images. This is the wall that lets
// every committed baseline (dspbench tables, BENCH_explore.json,
// BENCH_gaps.json, BENCH_corpus.json) survive the N-bank
// generalization byte-identical.
func TestDefaultSpecEquivalenceWall(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence wall in short mode")
	}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
	}
	explicit := machine.BankSpec{Banks: 2, PortsPerBank: 1}
	if !explicit.IsDefault() {
		t.Fatal("explicit 2x1 spec must be the default geometry")
	}
	progs := append(Kernels(), Applications()...)
	if len(progs) != 23 {
		t.Fatalf("suite has %d benchmarks, wall expects 23", len(progs))
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			var batch sim.Batch
			for _, mode := range modes {
				zc, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: mode})
				if err != nil {
					t.Fatalf("%v: compile (zero spec): %v", mode, err)
				}
				ec, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: mode, Spec: explicit})
				if err != nil {
					t.Fatalf("%v: compile (explicit spec): %v", mode, err)
				}
				sameRun(t, p.Name+"/"+mode.String()+"/reference", captureRef(t, zc), captureRef(t, ec))
				sameRun(t, p.Name+"/"+mode.String()+"/fast", captureFast(t, zc), captureFast(t, ec))
				sameRun(t, p.Name+"/"+mode.String()+"/compiled",
					captureCompiled(t, zc, &batch), captureCompiled(t, ec, &batch))
			}
		})
	}
}

// TestDefaultSpecKeysIdentical pins the cache-key side of the wall:
// an explicit classic spec must produce the same harness memo key and
// the same config fingerprint as the zero value, so warm caches and
// the on-disk store survive the generalization.
func TestDefaultSpecKeysIdentical(t *testing.T) {
	p, _ := ByName("fir_32_1")
	for _, mode := range []alloc.Mode{alloc.SingleBank, alloc.CB, alloc.CBDup} {
		zero := CacheKey(p, mode, RunOptions{})
		expl := CacheKey(p, mode, RunOptions{Banks: 2, Ports: 1})
		if zero != expl {
			t.Errorf("%v: cache key %q (zero) != %q (explicit 2x1)", mode, zero, expl)
		}
		if got := FingerprintSpec(mode, machine.BankSpec{Banks: 2, PortsPerBank: 1}); got != Fingerprint(mode) {
			t.Errorf("%v: fingerprint %q (explicit) != %q (zero)", mode, got, Fingerprint(mode))
		}
		hw := CacheKey(p, mode, RunOptions{Banks: 4})
		if hw == zero {
			t.Errorf("%v: 4-bank cache key collides with the classic key %q", mode, zero)
		}
	}
}
