package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dualbank/internal/genmc/corpus"
)

// TestRunSmoke drives the whole driver in-process over a small corpus
// and checks the summary, the JSON report, and the exit code.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "12", "-seed", "5", "-json", path, "-quiet"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "12 generated programs") {
		t.Errorf("summary missing program count:\n%s", stdout.String())
	}
	rep, err := corpus.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 12 || rep.Seed != 5 || len(rep.Rows) != 12 {
		t.Errorf("report shape wrong: n=%d seed=%d rows=%d", rep.N, rep.Seed, len(rep.Rows))
	}
	if len(rep.Failures) != 0 {
		t.Errorf("verification failures: %v", rep.Failures)
	}
}

// TestRunDeterministic: two runs with equal inputs write byte-identical
// reports — the property the committed baseline diff relies on.
func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	var out bytes.Buffer
	if code := run([]string{"-n", "9", "-seed", "3", "-workers", "4", "-json", a, "-quiet"}, &out, &out); code != 0 {
		t.Fatalf("first run exited %d: %s", code, out.String())
	}
	if code := run([]string{"-n", "9", "-seed", "3", "-workers", "1", "-json", b, "-quiet"}, &out, &out); code != 0 {
		t.Fatalf("second run exited %d: %s", code, out.String())
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Error("reports differ across worker widths")
	}
}

// TestRunBadFlags: unknown flags exit 2 without panicking.
func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &out); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}

// TestRunCertifySmoke drives the certified-sample mode through the
// CLI: per-archetype table on stdout, report JSON at the -json path.
func TestRunCertifySmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "certify.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-certify", "-n", "12", "-seed", "5", "-json", path, "-quiet"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"certified sample: 12 generated programs", "fm-opt", "FM provably optimal"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep corpus.CertifyReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("certify report JSON: %v", err)
	}
	if rep.N != 12 || rep.Seed != 5 || len(rep.Rows) != 12 {
		t.Errorf("report shape wrong: n=%d seed=%d rows=%d", rep.N, rep.Seed, len(rep.Rows))
	}
}
