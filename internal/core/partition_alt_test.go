package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualbank/internal/ir"
)

// randomGraph builds a random weighted interference graph.
func randomGraph(rng *rand.Rand, n, edges int) *Graph {
	syms := make([]*ir.Symbol, n)
	for i := range syms {
		syms[i] = &ir.Symbol{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Size: 1}
	}
	g := NewGraph(syms)
	for e := 0; e < edges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if g.Weight(syms[i], syms[j]) == 0 {
			g.SetWeight(syms[i], syms[j], int64(rng.Intn(5)+1))
		}
	}
	return g
}

// TestKLNeverWorseThanGreedy: the KL refinement starts from the greedy
// partition and only keeps improving passes.
func TestKLNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 4+rng.Intn(14), 2+rng.Intn(40))
		greedy := g.Partition()
		kl := g.PartitionKL()
		if kl.Cost > greedy.Cost {
			t.Fatalf("trial %d: KL cost %d worse than greedy %d", trial, kl.Cost, greedy.Cost)
		}
	}
}

// TestKLFindsOptimumGreedyMisses: on a graph engineered so the
// one-directional greedy gets stuck, KL's swap passes recover.
func TestKLFindsOptimumGreedyMisses(t *testing.T) {
	// Two triangles joined by a light edge: optimal cut keeps each
	// triangle... actually any triangle costs at least 1, so build a
	// 4-cycle with a chord: nodes a-b-c-d, edges ab=1, bc=1, cd=1,
	// da=1, ac=10. Optimal: a,c separated -> cost... a and c apart
	// means cut ac (10 saved), cut ab or bc etc. Best: {a,b},{c,d}
	// cuts bc, da, ac -> leaves ab, cd = cost 2.
	syms := []*ir.Symbol{sym("a"), sym("b"), sym("c"), sym("d")}
	g := NewGraph(syms)
	set := func(i, j int, w int64) { g.SetWeight(syms[i], syms[j], w) }
	set(0, 1, 1)
	set(1, 2, 1)
	set(2, 3, 1)
	set(3, 0, 1)
	set(0, 2, 10)
	kl := g.PartitionKL()
	if kl.Cost > 2 {
		t.Fatalf("KL cost %d, want <= 2", kl.Cost)
	}
}

// TestAnnealValidAndDecent: annealing yields a valid partition whose
// cost is no worse than leaving everything in one bank, and on small
// graphs it should match or beat greedy most of the time.
func TestAnnealValidAndDecent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	better, worse := 0, 0
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 4+rng.Intn(10), 2+rng.Intn(30))
		var total int64
		for _, e := range g.edges {
			total += e.w
		}
		an := g.PartitionAnneal(int64(trial))
		if an.Cost > total {
			t.Fatalf("anneal cost %d exceeds total weight %d", an.Cost, total)
		}
		if len(an.SetX)+len(an.SetY) != len(g.Nodes) {
			t.Fatal("anneal lost nodes")
		}
		gr := g.Partition()
		switch {
		case an.Cost < gr.Cost:
			better++
		case an.Cost > gr.Cost:
			worse++
		}
	}
	// The Princeton comparison the paper cites: annealing is not
	// meaningfully better than the simple heuristic.
	if worse > 10 {
		t.Errorf("annealing lost to greedy %d/30 times — schedule too cold?", worse)
	}
	t.Logf("anneal vs greedy: better %d, worse %d, equal %d", better, worse, 30-better-worse)
}

// TestAnnealDeterministic: same seed, same partition.
func TestAnnealDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 12, 30)
	a := g.PartitionAnneal(42)
	b := g.PartitionAnneal(42)
	if a.Cost != b.Cost || len(a.SetY) != len(b.SetY) {
		t.Fatal("annealing is not deterministic for a fixed seed")
	}
	for i := range a.SetY {
		if a.SetY[i] != b.SetY[i] {
			t.Fatal("annealing is not deterministic for a fixed seed")
		}
	}
}

// TestMethodsProduceValidPartitions is the quick-check umbrella over
// all three methods.
func TestMethodsProduceValidPartitions(t *testing.T) {
	f := func(seed int64, nn uint8, ne uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+int(nn%14), int(ne%50))
		for _, m := range []Method{MethodGreedy, MethodKL, MethodAnneal, MethodFM} {
			p := g.PartitionWith(m)
			seen := map[*ir.Symbol]bool{}
			for _, s := range append(append([]*ir.Symbol{}, p.SetX...), p.SetY...) {
				if seen[s] {
					return false
				}
				seen[s] = true
			}
			if len(seen) != len(g.Nodes) {
				return false
			}
			if p.Cost < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
