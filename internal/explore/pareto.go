package explore

import "sort"

// Point is one candidate on (or considered for) a cycles-vs-cost
// frontier: the configuration's key, its cycle count, and its total
// memory cost in words under the paper's model Cost = X + Y + 2·S + I.
// PG/CI/PCR are the Table 3 metrics relative to the benchmark's
// single-bank baseline, filled in by the engine.
type Point struct {
	Config string `json:"config"`
	Cycles int64  `json:"cycles"`
	Cost   int    `json:"cost"`
	// HW is the machine's hardware-cost annotation — the third axis of
	// the architecture sweep. It is 0 on the classic dual-bank machine
	// (and then absent from the JSON), so classic reports render the
	// bytes they always did.
	HW int `json:"hw,omitempty"`

	PG  float64 `json:"pg"`
	CI  float64 `json:"ci"`
	PCR float64 `json:"pcr"`
}

// dominates reports whether a is at least as good as b on both axes
// and strictly better on at least one (minimizing cycles and cost).
func dominates(a, b Point) bool {
	if a.Cycles > b.Cycles || a.Cost > b.Cost {
		return false
	}
	return a.Cycles < b.Cycles || a.Cost < b.Cost
}

// Frontier maintains the exact Pareto frontier of a point stream,
// minimizing both coordinates. Insertion order is the tie-breaker:
// when a new point ties an existing one on both axes, the incumbent
// stays — so a frontier built from a deterministic candidate order is
// itself deterministic, regardless of how many workers produced the
// evaluations. The zero value is an empty frontier.
type Frontier struct {
	// pts is kept sorted by cost ascending; because dominated points
	// are evicted, cycles are then strictly descending.
	pts []Point
}

// Len returns the number of frontier points.
func (f *Frontier) Len() int { return len(f.pts) }

// Points returns the frontier sorted by cost ascending (cycles
// strictly descending). The slice is a copy.
func (f *Frontier) Points() []Point {
	return append([]Point(nil), f.pts...)
}

// Add offers one point. It returns true when the point joins the
// frontier (evicting whatever it dominates), false when an existing
// point dominates or ties it.
func (f *Frontier) Add(p Point) bool {
	// Find the insertion slot by cost; among equal costs the incumbent
	// with fewer cycles makes the new point redundant.
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].Cost >= p.Cost })
	// Anything at or left of the slot has cost <= p.Cost; the
	// rightmost such point has the fewest cycles among them. If it
	// ties-or-beats p on cycles, p is dominated (or an exact tie).
	if i > 0 && f.pts[i-1].Cycles <= p.Cycles {
		return false
	}
	if i < len(f.pts) && f.pts[i].Cost == p.Cost && f.pts[i].Cycles <= p.Cycles {
		return false
	}
	// p survives: evict every point it dominates — the run of points
	// from i rightward with cycles >= p.Cycles (their cost is >=, so
	// domination reduces to the cycles test).
	j := i
	for j < len(f.pts) && f.pts[j].Cycles >= p.Cycles {
		j++
	}
	f.pts = append(f.pts[:i], append([]Point{p}, f.pts[j:]...)...)
	return true
}

// Dominating returns the frontier points that strictly dominate ref —
// fewer cycles at no greater cost, or lower cost at no more cycles —
// in frontier order (cost ascending).
func (f *Frontier) Dominating(ref Point) []Point {
	var out []Point
	for _, p := range f.pts {
		if dominates(p, ref) {
			out = append(out, p)
		}
	}
	return out
}

// bruteFrontier computes the frontier of pts by pairwise dominance in
// O(n²) — the reference the property test pins Frontier against.
// First-come-wins on exact coordinate ties, like Frontier.
func bruteFrontier(pts []Point) []Point {
	var out []Point
	for i, p := range pts {
		alive := true
		for j, q := range pts {
			if dominates(q, p) || (q.Cycles == p.Cycles && q.Cost == p.Cost && j < i) {
				alive = false
				break
			}
		}
		if alive {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}
