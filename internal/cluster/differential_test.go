package cluster_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dualbank/internal/cluster"
	"dualbank/internal/serve"
)

// normalizeRun strips the fields that legitimately differ between a
// cluster-served and a single-node /v1/run response — wall-clock
// timings and the cache flag — and re-marshals canonically. Everything
// else must match byte-for-byte.
func normalizeRun(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("normalizing %s: %v", data, err)
	}
	delete(m, "compile_seconds")
	delete(m, "sim_seconds")
	delete(m, "cached")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterDifferential proves the cluster tier is semantically
// invisible: for the full 23-benchmark × 7-mode matrix, a 3-node
// cluster answers /v1/run identically (modulo timings) to a lone
// server, and a design-space exploration submitted to a cluster node
// yields a byte-identical frontier report. CI runs this under -race.
func TestClusterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix in short mode")
	}
	single := serve.New(serve.Config{Workers: 4})
	defer single.Close()
	ss := httptest.NewServer(single.Handler())
	defer ss.Close()

	lc, err := cluster.StartLocal(cluster.LocalOptions{
		N: 3, Replication: 2,
		StoreDir: t.TempDir(),
		Serve:    serve.Config{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	bodies := cluster.LoadBodies()
	if len(bodies) != 23*7 {
		t.Fatalf("matrix has %d bodies, want %d", len(bodies), 23*7)
	}
	for i, body := range bodies {
		sc, sdata := postJSON(t, ss.URL+"/v1/run", body)
		cc, cdata := postJSON(t, lc.URL(i%lc.N())+"/v1/run", body)
		if sc != cc {
			t.Fatalf("%s: single status %d, cluster status %d", body, sc, cc)
		}
		if sc != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, sc, sdata)
		}
		sn, cn := normalizeRun(t, sdata), normalizeRun(t, cdata)
		if !bytes.Equal(sn, cn) {
			t.Errorf("%s:\nsingle  %s\ncluster %s", body, sn, cn)
		}
	}

	// Multi-bank keys route and memoize like classic ones: the machine
	// geometry is part of the memo key, so a 4-bank request and its
	// classic twin are distinct cluster keys with distinct answers.
	hwBodies := []string{
		`{"bench":"latnrm_8_1","mode":"CB","banks":4}`,
		`{"bench":"latnrm_8_1","mode":"CB","banks":2,"ports":2}`,
		`{"bench":"latnrm_8_1","mode":"CB"}`,
	}
	for i, body := range hwBodies {
		sc, sdata := postJSON(t, ss.URL+"/v1/run", body)
		cc, cdata := postJSON(t, lc.URL(i%lc.N())+"/v1/run", body)
		if sc != cc || sc != http.StatusOK {
			t.Fatalf("%s: single status %d, cluster status %d: %s", body, sc, cc, sdata)
		}
		sn, cn := normalizeRun(t, sdata), normalizeRun(t, cdata)
		if !bytes.Equal(sn, cn) {
			t.Errorf("%s:\nsingle  %s\ncluster %s", body, sn, cn)
		}
	}

	// The exploration differential: same submission, byte-identical
	// frontier. The explorer is deterministic and the cluster tier
	// passes explorations through untouched, so no normalization at all.
	exploreBody := `{"benchmarks":["fir_32_1","lmsfir_8_1"],"budget":25}`
	sf := runExplore(t, ss.URL, exploreBody)
	cf := runExplore(t, lc.URL(0), exploreBody)
	if !bytes.Equal(sf, cf) {
		t.Errorf("frontier reports differ:\nsingle  %s\ncluster %s", sf, cf)
	}
}

// runExplore submits an exploration, polls it to completion, and
// returns the frontier report bytes.
func runExplore(t *testing.T, base, body string) []byte {
	t.Helper()
	code, data := postJSON(t, base+"/v1/explore", body)
	if code != http.StatusAccepted {
		t.Fatalf("explore submit: status %d: %s", code, data)
	}
	var st serve.ExploreStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var cur serve.ExploreStatus
		getJSON(t, base+"/v1/explore/"+st.ID, &cur)
		if cur.State == "done" {
			break
		}
		if cur.State == "failed" || cur.State == "cancelled" {
			t.Fatalf("exploration %s: %s (%s)", st.ID, cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("exploration %s still %s after 2m (%d/%d)", st.ID, cur.State, cur.Done, cur.Planned)
		}
		time.Sleep(50 * time.Millisecond)
	}
	resp, err := http.Get(base + "/v1/explore/" + st.ID + "/frontier")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frontier: status %d", resp.StatusCode)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterErrorBytesIdentical: malformed and invalid requests get
// byte-identical error responses from a cluster node and a lone
// server — the routing layer must not grow its own error dialect.
func TestClusterErrorBytesIdentical(t *testing.T) {
	single := serve.New(serve.Config{Workers: 1})
	defer single.Close()
	ss := httptest.NewServer(single.Handler())
	defer ss.Close()

	lc, err := cluster.StartLocal(cluster.LocalOptions{
		N: 2, Replication: 2,
		Serve: serve.Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	cases := []string{
		`{`,
		`{"bench":"nope"}`,
		`{"bench":"fir_32_1","mode":"zig"}`,
		`{"bench":"fir_32_1","engine":"turbo"}`,
		`{"bench":"fir_32_1","source":"void main() {}"}`,
		`{"bonch":"fir_32_1"}`,
		`{"bench":"fir_32_1"}{"bench":"fir_32_1"}`,
		`{"bench":"fir_32_1","timeout_ms":-4}`,
		`null`,
	}
	for _, body := range cases {
		sc, sdata := postJSON(t, ss.URL+"/v1/run", body)
		cc, cdata := postJSON(t, lc.URL(0)+"/v1/run", body)
		if sc != cc || !bytes.Equal(sdata, cdata) {
			t.Errorf("%s:\nsingle  %d %s\ncluster %d %s", body, sc, sdata, cc, cdata)
		}
		if sc == http.StatusOK {
			t.Errorf("%s unexpectedly succeeded", body)
		}
	}
}
