package pipeline_test

import (
	"fmt"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/compact"
	"dualbank/internal/genmc/corpus"
	"dualbank/internal/pipeline"
)

// Metamorphic compiler tests: three semantics-preserving source (or
// option) transformations that must leave the simulated cycle count of
// every benchmark invariant under every allocation mode —
//
//   - renaming every identifier (the compiler must not key any
//     decision on spelling),
//   - permuting the top-level declaration order (layout and
//     partitioning must not depend on which global came first), and
//   - swapping the X/Y bank assignment wholesale (the banks are
//     architecturally identical).
//
// A divergence here means some pass broke a symmetry the architecture
// guarantees — typically an order- or name-sensitive tie-break.

// metamorphicModes is the mode slice the invariants are checked under:
// the unoptimized baseline, compaction-based partitioning, and partial
// duplication.
var metamorphicModes = []alloc.Mode{alloc.SingleBank, alloc.CB, alloc.CBDup}

// renameIdents rewrites source with every identifier (except main)
// replaced by a fresh machine-generated name. The transform itself
// lives in the corpus package, where the generated-program suites
// reuse it; this wrapper adapts its error to the test.
func renameIdents(t *testing.T, source string) string {
	t.Helper()
	out, err := corpus.RenameIdents(source)
	if err != nil {
		t.Fatalf("rename: %v", err)
	}
	return out
}

// permuteDecls rewrites source with its top-level declarations in
// reverse order — the full mirror permutation, which displaces every
// declaration and still compiles because MiniC resolves globals and
// functions in a separate pass before checking bodies.
func permuteDecls(t *testing.T, source string) string {
	t.Helper()
	out, err := corpus.PermuteDecls(source)
	if err != nil {
		t.Fatalf("permute: %v", err)
	}
	return out
}

// measureCycles compiles source under o, validates the schedule, runs
// the fast simulator, optionally checks program outputs, and returns
// the cycle count.
func measureCycles(t *testing.T, source, name string, o pipeline.Options, check func(bench.Reader) error) int64 {
	t.Helper()
	c, err := pipeline.Compile(source, name, o)
	if err != nil {
		t.Fatalf("%s/%v: compile: %v", name, o.Mode, err)
	}
	if err := compact.Validate(c.Sched); err != nil {
		t.Fatalf("%s/%v: schedule: %v", name, o.Mode, err)
	}
	m, err := c.RunFast()
	if err != nil {
		t.Fatalf("%s/%v: run: %v", name, o.Mode, err)
	}
	if check != nil {
		read := func(sym string, idx int) (uint32, error) {
			g := c.Global(sym)
			if g == nil {
				return 0, fmt.Errorf("no global %q", sym)
			}
			return m.Word(g, idx)
		}
		if err := check(read); err != nil {
			t.Fatalf("%s/%v: output check: %v", name, o.Mode, err)
		}
	}
	return m.Cycles
}

// TestMetamorphicInvariants checks all three invariants for all 23
// benchmarks under {single-bank, CB, Dup}. Renamed variants skip the
// output check (it reads globals by their original names); the other
// variants keep it, so the transforms are also validated end to end.
func TestMetamorphicInvariants(t *testing.T) {
	progs := append(bench.Kernels(), bench.Applications()...)
	for _, p := range progs {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			renamed := renameIdents(t, p.Source)
			permuted := permuteDecls(t, p.Source)
			for _, mode := range metamorphicModes {
				base := measureCycles(t, p.Source, p.Name, pipeline.Options{Mode: mode}, p.Check)
				if got := measureCycles(t, renamed, p.Name, pipeline.Options{Mode: mode}, nil); got != base {
					t.Errorf("%s/%v: renaming identifiers changed cycles: %d -> %d", p.Name, mode, base, got)
				}
				if got := measureCycles(t, permuted, p.Name, pipeline.Options{Mode: mode}, p.Check); got != base {
					t.Errorf("%s/%v: permuting declarations changed cycles: %d -> %d", p.Name, mode, base, got)
				}
				swapped := pipeline.Options{Mode: mode, SwapBanks: true}
				if got := measureCycles(t, p.Source, p.Name, swapped, p.Check); got != base {
					t.Errorf("%s/%v: swapping banks changed cycles: %d -> %d", p.Name, mode, base, got)
				}
			}
		})
	}
}

// TestSwapBanksMirrorsAllocation pins the mechanism, not just the
// cycle count: under CB with swapped banks the partition's X set lands
// in bank Y and vice versa, and the per-bank word accounting mirrors.
func TestSwapBanksMirrorsAllocation(t *testing.T) {
	p, ok := bench.ByName("fir_32_1")
	if !ok {
		t.Fatal("fir_32_1 missing from the suite")
	}
	plain, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB, SwapBanks: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Alloc.GlobalX != swapped.Alloc.GlobalY || plain.Alloc.GlobalY != swapped.Alloc.GlobalX {
		t.Errorf("global words did not mirror: plain X=%d Y=%d, swapped X=%d Y=%d",
			plain.Alloc.GlobalX, plain.Alloc.GlobalY, swapped.Alloc.GlobalX, swapped.Alloc.GlobalY)
	}
	if plain.Alloc.StackX != swapped.Alloc.StackY || plain.Alloc.StackY != swapped.Alloc.StackX {
		t.Errorf("stack words did not mirror: plain X=%d Y=%d, swapped X=%d Y=%d",
			plain.Alloc.StackX, plain.Alloc.StackY, swapped.Alloc.StackX, swapped.Alloc.StackY)
	}
	if plain.Alloc.GlobalX+plain.Alloc.GlobalY == 0 {
		t.Error("degenerate benchmark: no global words at all")
	}
}
