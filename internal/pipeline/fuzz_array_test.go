package pipeline

// Array-access fuzzing: random programs whose loop bodies read and
// write global arrays through masked indices. This drives the memory
// system itself — bank partitioning, duplicated-store coherence, and
// the low-order-interleaved organisation — against a mirrored Go
// evaluator.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dualbank/internal/alloc"
)

const (
	arrCount = 3
	arrSize  = 8
)

type aEnv struct {
	arrs [arrCount][arrSize]int32
	vars map[string]int32
}

type aExpr struct {
	src  string
	eval func(*aEnv) int32
}

type aGen struct {
	rng  *rand.Rand
	vars []string
}

func (g *aGen) leaf() aExpr {
	switch g.rng.Intn(3) {
	case 0:
		v := int32(g.rng.Intn(101) - 50)
		s := fmt.Sprintf("%d", v)
		if v < 0 {
			s = "(" + s + ")"
		}
		return aExpr{src: s, eval: func(*aEnv) int32 { return v }}
	case 1:
		name := g.vars[g.rng.Intn(len(g.vars))]
		return aExpr{src: name, eval: func(e *aEnv) int32 { return e.vars[name] }}
	default:
		arr := g.rng.Intn(arrCount)
		idx := g.gen(0) // shallow index expression
		return aExpr{
			src: fmt.Sprintf("m%d[(%s) & %d]", arr, idx.src, arrSize-1),
			eval: func(e *aEnv) int32 {
				return e.arrs[arr][int(uint32(idx.eval(e))&uint32(arrSize-1))]
			},
		}
	}
}

func (g *aGen) gen(depth int) aExpr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.leaf()
	}
	a, b := g.gen(depth-1), g.gen(depth-1)
	ops := []string{"+", "-", "*", "^", "&", "|"}
	op := ops[g.rng.Intn(len(ops))]
	return aExpr{
		src: fmt.Sprintf("(%s %s %s)", a.src, op, b.src),
		eval: func(e *aEnv) int32 {
			x, y := a.eval(e), b.eval(e)
			switch op {
			case "+":
				return x + y
			case "-":
				return x - y
			case "*":
				return x * y
			case "^":
				return x ^ y
			case "&":
				return x & y
			}
			return x | y
		},
	}
}

// genArrayProgram emits a program of loop statements mixing scalar and
// array assignments, with the evaluator mirroring it.
func genArrayProgram(rng *rand.Rand) (string, *aEnv) {
	g := &aGen{rng: rng, vars: []string{"i", "v0", "v1"}}
	env := &aEnv{vars: map[string]int32{"v0": 3, "v1": -7, "i": 0}}
	trips := 2 + rng.Intn(8)

	var sb strings.Builder
	for a := 0; a < arrCount; a++ {
		fmt.Fprintf(&sb, "int m%d[%d] = {", a, arrSize)
		for i := 0; i < arrSize; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			v := int32(rng.Intn(41) - 20)
			env.arrs[a][i] = v
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteString("};\n")
	}
	sb.WriteString("int v0 = 3;\nint v1 = -7;\n")
	fmt.Fprintf(&sb, "void main() {\n\tint i;\n\tfor (i = 0; i < %d; i++) {\n", trips)

	type stmt struct {
		run func(e *aEnv)
	}
	var stmts []stmt
	n := 2 + rng.Intn(4)
	for s := 0; s < n; s++ {
		e := g.gen(2)
		if rng.Intn(2) == 0 {
			// Scalar assignment.
			target := []string{"v0", "v1"}[rng.Intn(2)]
			fmt.Fprintf(&sb, "\t\t%s = %s;\n", target, e.src)
			stmts = append(stmts, stmt{func(env *aEnv) { env.vars[target] = e.eval(env) }})
		} else {
			arr := rng.Intn(arrCount)
			idx := g.gen(0)
			fmt.Fprintf(&sb, "\t\tm%d[(%s) & %d] = %s;\n", arr, idx.src, arrSize-1, e.src)
			stmts = append(stmts, stmt{func(env *aEnv) {
				// C evaluation order in our lowering: the destination
				// index is computed first, then the value.
				ix := int(uint32(idx.eval(env)) & uint32(arrSize-1))
				env.arrs[arr][ix] = e.eval(env)
			}})
		}
	}
	sb.WriteString("\t}\n}\n")

	for it := int32(0); it < int32(trips); it++ {
		env.vars["i"] = it
		for _, s := range stmts {
			s.run(env)
		}
	}
	return sb.String(), env
}

// TestRandomArrayPrograms exercises the full pipeline's memory system
// under every interesting organisation.
func TestRandomArrayPrograms(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 10
	}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBDup, alloc.FullDup,
		alloc.Ideal, alloc.LowOrder,
	}
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(5000 + seed)))
		src, want := genArrayProgram(rng)
		for _, mode := range modes {
			c, err := Compile(src, fmt.Sprintf("afuzz%d", seed), Options{Mode: mode})
			if err != nil {
				t.Fatalf("seed %d mode %v: compile: %v\nsource:\n%s", seed, mode, err, src)
			}
			m, err := c.Run()
			if err != nil {
				t.Fatalf("seed %d mode %v: run: %v\nsource:\n%s", seed, mode, err, src)
			}
			for a := 0; a < arrCount; a++ {
				g := c.Global(fmt.Sprintf("m%d", a))
				for i := 0; i < arrSize; i++ {
					got, err := m.Int32(g, i)
					if err != nil {
						t.Fatalf("seed %d mode %v: %v", seed, mode, err)
					}
					if got != want.arrs[a][i] {
						t.Fatalf("seed %d mode %v: m%d[%d] = %d, want %d\nsource:\n%s",
							seed, mode, a, i, got, want.arrs[a][i], src)
					}
				}
			}
		}
	}
}
