package explore

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"dualbank/internal/bench"
	"dualbank/internal/core"
	"dualbank/internal/explore/store"
)

func prog(t *testing.T, name string) bench.Program {
	t.Helper()
	p, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return p
}

// frontierBytes is the determinism fingerprint the acceptance
// criterion talks about: the frontier (and verdict fields) serialized.
func frontierBytes(t *testing.T, r *Report) []byte {
	t.Helper()
	type verdict struct {
		Frontier     []Point
		CB           Point
		DominatingCB []Point
		Best         Point
		Exhaustive   bool
	}
	var all []verdict
	for _, br := range r.Benchmarks {
		all = append(all, verdict{br.Frontier, br.CB, br.DominatingCB, br.Best, br.Exhaustive})
	}
	all = append(all, verdict{Frontier: r.Suite})
	b, err := json.Marshal(all)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestConfigKeyRoundTrip pins Key/ParseConfig as inverses on the
// whole enumerated space.
func TestConfigKeyRoundTrip(t *testing.T) {
	configs := enumerate([]string{"h", "x"}, []string{"h", "x", "y"}, 3)
	if len(configs) < 30 {
		t.Fatalf("enumerate produced only %d configs", len(configs))
	}
	seen := make(map[string]bool)
	for _, c := range configs {
		key := c.Key()
		if seen[key] {
			t.Fatalf("enumerate repeated config %q", key)
		}
		seen[key] = true
		back, err := ParseConfig(key)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", key, err)
		}
		if back.Key() != key {
			t.Fatalf("round trip %q -> %q", key, back.Key())
		}
	}
	if _, err := ParseConfig("part=bogus"); err == nil {
		t.Error("ParseConfig accepted an unknown partitioner")
	}
	if _, err := ParseConfig("dup=all"); err == nil {
		t.Error("ParseConfig accepted a config without part=")
	}
}

// TestExploreDeterministicAcrossWorkers runs the same exploration at
// 1 and 8 workers and requires byte-identical frontiers.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	progs := []bench.Program{prog(t, "fir_32_1"), prog(t, "mult_4_4")}
	opts := Options{Budget: 120}

	opts.Workers = 1
	r1, err := Explore(context.Background(), progs, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	r8, err := Explore(context.Background(), progs, opts)
	if err != nil {
		t.Fatal(err)
	}
	b1, b8 := frontierBytes(t, r1), frontierBytes(t, r8)
	if string(b1) != string(b8) {
		t.Fatalf("frontier differs between 1 and 8 workers\n1: %s\n8: %s", b1, b8)
	}
	if len(r1.Suite) == 0 {
		t.Error("multi-benchmark exploration produced no suite frontier")
	}
	for _, br := range r1.Benchmarks {
		if len(br.Frontier) == 0 {
			t.Errorf("%s: empty frontier", br.Bench)
		}
		if br.CB.Config != FixedCB.Key() {
			t.Errorf("%s: CB point is %q", br.Bench, br.CB.Config)
		}
	}
}

// TestExploreResumeAfterKill kills an exploration partway through
// (context cancel triggered from the progress stream), resumes it
// from the checkpoint store, and requires the resumed frontier to be
// byte-identical to an uninterrupted run's — with the already-computed
// prefix replayed from the store, not re-simulated.
func TestExploreResumeAfterKill(t *testing.T) {
	p := prog(t, "fir_32_1")
	uninterrupted, err := Explore(context.Background(), []bench.Program{p}, Options{Budget: 80, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var events atomic.Int64
	const killAfter = 9
	_, err = Explore(ctx, []bench.Program{p}, Options{
		Budget: 80, Workers: 2, Store: st,
		Progress: func(Event) {
			if events.Add(1) == killAfter {
				cancel()
			}
		},
	})
	cancel()
	if err == nil {
		t.Fatal("killed exploration reported success")
	}
	checkpointed := st.Len()
	if checkpointed == 0 {
		t.Fatal("no evaluations were checkpointed before the kill")
	}

	// Resume from the same directory through a fresh Store, as a new
	// process would.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != checkpointed {
		t.Fatalf("reopened store has %d records, want %d", st2.Len(), checkpointed)
	}
	var storeHits atomic.Int64
	resumed, err := Explore(context.Background(), []bench.Program{p}, Options{
		Budget: 80, Workers: 2, Store: st2,
		Progress: func(ev Event) {
			if ev.Source == "store" {
				storeHits.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := frontierBytes(t, resumed), frontierBytes(t, uninterrupted); string(got) != string(want) {
		t.Fatalf("resumed frontier differs from uninterrupted run\nresumed: %s\nfull:    %s", got, want)
	}
	if storeHits.Load() == 0 {
		t.Error("resume re-simulated everything: no checkpoint replays")
	}
	if resumed.StoreHits != int(storeHits.Load()) {
		t.Errorf("report counts %d store hits, progress stream saw %d", resumed.StoreHits, storeHits.Load())
	}
}

// TestExploreBudgetTruncates pins budget semantics: a tiny budget
// explores a deterministic prefix and is never marked exhaustive.
func TestExploreBudgetTruncates(t *testing.T) {
	p := prog(t, "fir_32_1")
	r, err := Explore(context.Background(), []bench.Program{p}, Options{Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	br := r.Benchmarks[0]
	if br.Evals != 8 {
		t.Errorf("evals = %d, want exactly the budget 8", br.Evals)
	}
	if br.Exhaustive {
		t.Error("truncated exploration claims exhaustion")
	}
	// The paper's arms are front-loaded: CB must be inside any sane
	// budget, or domination verdicts would be impossible.
	if br.CB.Config != FixedCB.Key() {
		t.Errorf("CB point missing from budget-8 prefix: %+v", br.CB)
	}
}

// TestExploreHillClimb forces the adaptive phase (ExactK below the
// array count) and checks it stays within budget and deterministic.
func TestExploreHillClimb(t *testing.T) {
	p := prog(t, "iir_1_1")
	opts := Options{Budget: 60, ExactK: 1, Workers: 4}
	r1, err := Explore(context.Background(), []bench.Program{p}, opts)
	if err != nil {
		t.Fatal(err)
	}
	br := r1.Benchmarks[0]
	if br.Exhaustive {
		t.Error("hill-climbed exploration claims exhaustion")
	}
	if br.Evals > 60 {
		t.Errorf("evals = %d exceeds budget 60", br.Evals)
	}
	if len(br.DupArrays) <= 1 {
		t.Fatalf("iir_1_1 has %d dup arrays; need >1 to exercise hill climbing", len(br.DupArrays))
	}
	r2, err := Explore(context.Background(), []bench.Program{p}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(frontierBytes(t, r1)) != string(frontierBytes(t, r2)) {
		t.Error("hill-climbing exploration is not deterministic")
	}
}

// TestExploreFindsDominatorOrExhaustsFFT256 is the acceptance
// criterion: within a 200-evaluation budget on fft_256 the engine
// either finds a configuration strictly dominating the paper's fixed
// CB point or proves by exhaustion that none exists in the space.
func TestExploreFindsDominatorOrExhaustsFFT256(t *testing.T) {
	if testing.Short() {
		t.Skip("fft_256 exploration in -short mode")
	}
	p := prog(t, "fft_256")
	r, err := Explore(context.Background(), []bench.Program{p}, Options{Budget: 200, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	br := r.Benchmarks[0]
	if len(br.DominatingCB) == 0 && !br.Exhaustive {
		t.Fatalf("budget 200 neither found a dominator of fixed CB nor exhausted the space (evals=%d)", br.Evals)
	}
	for _, d := range br.DominatingCB {
		if d.Cycles > br.CB.Cycles || d.Cost > br.CB.Cost {
			t.Errorf("%q reported as dominating but is not: %+v vs CB %+v", d.Config, d, br.CB)
		}
		if d.Cycles == br.CB.Cycles && d.Cost == br.CB.Cost {
			t.Errorf("%q ties CB, does not dominate", d.Config)
		}
	}
}

// TestFixedMatchesDirectRuns pins the Fixed helper (the tradeoff
// example's engine) to direct bench.Run measurements.
func TestFixedMatchesDirectRuns(t *testing.T) {
	p := prog(t, "fir_32_1")
	base, rows, err := Fixed(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(FixedModes) {
		t.Fatalf("%d rows, want %d", len(rows), len(FixedModes))
	}
	directBase, err := bench.Run(p, FixedModes[0])
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Cycles != directBase.Cycles {
		t.Errorf("CB row cycles %d, direct run %d", rows[0].Cycles, directBase.Cycles)
	}
	if base.Cycles <= rows[len(rows)-1].Cycles {
		t.Errorf("baseline (%d cycles) not slower than Ideal (%d)", base.Cycles, rows[len(rows)-1].Cycles)
	}
}

// TestAnalyze smoke-tests the analysis view the explorer example
// wraps.
func TestAnalyze(t *testing.T) {
	p := prog(t, "fir_32_1")
	a, err := Analyze(p.Source, p.Name)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	a.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"Interference graph", "Final partition", "Bank assignment"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis text missing %q:\n%s", want, out)
		}
	}
	if dot := a.Dot(); !strings.Contains(dot, "graph") {
		t.Errorf("Dot output does not look like graphviz: %q", dot)
	}
	if _, _, err := DupCandidates(p); err != nil {
		t.Errorf("DupCandidates: %v", err)
	}
}

// TestEnumerateFrontLoadsPaperArms pins the candidate order contract:
// the four paper design points come first, in order.
func TestEnumerateFrontLoadsPaperArms(t *testing.T) {
	configs := enumerate([]string{"a"}, []string{"a", "b"}, 4)
	want := []string{"single", "part=greedy", "part=greedy;prof", "part=greedy;dup=all"}
	for i, w := range want {
		if got := configs[i].Key(); got != w {
			t.Errorf("config[%d] = %q, want %q", i, got, w)
		}
	}
	// Partitioner variety must appear in the grid.
	keys := make(map[string]bool)
	for _, c := range configs {
		keys[c.Key()] = true
	}
	for _, m := range []core.Method{core.MethodFM, core.MethodKL, core.MethodAnneal} {
		if !keys["part="+m.String()] {
			t.Errorf("grid missing partitioner %v", m)
		}
	}
}
