package bench

import (
	"fmt"
	"strings"
)

// This file implements the data-communication applications of Table 2:
// V32encode, the three G721 ADPCM codec variants, and trellis.
//
// V32encode's self-synchronising scrambler reads two taps of its own
// bit history per input bit — a same-array access pattern that marks
// the history for duplication, which is why V32encode appears in the
// paper's partial-duplication set. The G721 codecs are long serial
// integer dependence chains over register-resident state (the paper's
// zero-parallelism applications). trellis is a Viterbi decoder whose
// add-compare-select reads two old path metrics from one small array.

// V32Encode builds the V.32 modem encoder: scrambler, differential
// encoder, convolutional encoder, and 8-point constellation mapper.
func V32Encode() Program {
	const (
		nbits = 512
		nsym  = nbits / 2
	)
	rng := newPRNG(31)
	bits := randInts(rng, nbits, 2)
	seed := randInts(rng, 23, 2)

	// Convolutional encoder over the differential dibit stream: a
	// 2-bit state machine producing one redundancy bit per symbol.
	nextTab := make([]int32, 16)
	outTab := make([]int32, 16)
	for st := int32(0); st < 4; st++ {
		for in := int32(0); in < 4; in++ {
			nextTab[st*4+in] = ((st << 1) | (in & 1)) & 3
			outTab[st*4+in] = ((st >> 1) ^ st ^ (in >> 1)) & 1
		}
	}
	// 8-point constellation.
	mapI := []int32{-3, -1, 1, 3, -3, -1, 1, 3}
	mapQ := []int32{-1, -3, 3, 1, 1, 3, -3, -1}

	// Go reference.
	scr := make([]int32, nbits+23)
	copy(scr, seed)
	for i := 0; i < nbits; i++ {
		scr[i+23] = bits[i] ^ scr[i+5] ^ scr[i]
	}
	wantI := make([]int32, nsym)
	wantQ := make([]int32, nsym)
	state, prevQ := int32(0), int32(0)
	for s := 0; s < nsym; s++ {
		q1 := scr[2*s+23]
		q2 := scr[2*s+24]
		dibit := q1*2 + q2
		prevQ = (prevQ + dibit) & 3
		y0 := outTab[state*4+prevQ]
		state = nextTab[state*4+prevQ]
		sym := prevQ*2 + y0
		wantI[s] = mapI[sym]
		wantQ[s] = mapQ[sym]
	}

	// The MiniC implementation processes the bit stream in frames,
	// keeping a sliding 23-bit-history scrambler window — the natural
	// embedded structure (the scrambler state is small; the stream is
	// not kept in memory twice). The window is the duplication
	// candidate: each step reads two of its taps simultaneously.
	const (
		frame  = 64
		nfrm   = nbits / frame
		fsymPF = frame / 2
	)
	var sb strings.Builder
	sb.WriteString(intsDecl("bits", bits))
	fmt.Fprintf(&sb, "int fscr[%d] = {", frame+23)
	for i, v := range seed {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteString("};\n")
	sb.WriteString(intsDecl("nexttab", nextTab))
	sb.WriteString(intsDecl("outtab", outTab))
	sb.WriteString(intsDecl("mapi", mapI))
	sb.WriteString(intsDecl("mapq", mapQ))
	fmt.Fprintf(&sb, "int chanI[%d];\nint chanQ[%d];\n", nsym, nsym)
	fmt.Fprintf(&sb, `
void main() {
	int f;
	int i;
	int s;
	int state = 0;
	int prevq = 0;
	for (f = 0; f < %[3]d; f++) {
		int boff = f * %[1]d;
		// Self-synchronising scrambler, 1 + x^-18 + x^-23, over this
		// frame's window.
		for (i = 0; i < %[1]d; i++) {
			fscr[i + 23] = bits[boff + i] ^ fscr[i + 5] ^ fscr[i];
		}
		// Differential + convolutional encoding, constellation mapping.
		int soff = f * %[2]d;
		for (s = 0; s < %[2]d; s++) {
			int q1 = fscr[2*s + 23];
			int q2 = fscr[2*s + 24];
			int dibit = q1 * 2 + q2;
			prevq = (prevq + dibit) & 3;
			int y0 = outtab[state*4 + prevq];
			state = nexttab[state*4 + prevq];
			int sym = prevq * 2 + y0;
			chanI[soff + s] = mapi[sym];
			chanQ[soff + s] = mapq[sym];
		}
		// Carry the last 23 scrambled bits into the next frame.
		for (i = 0; i < 23; i++) {
			fscr[i] = fscr[%[1]d + i];
		}
	}
}
`, frame, fsymPF, nfrm)

	return Program{
		Name:   "V32encode",
		Desc:   "V.32 modem encoder: scrambler, differential/convolutional encoding, QAM mapping",
		Kind:   Application,
		Source: sb.String(),
		Check: func(r Reader) error {
			if err := checkI32s(r, "chanI", wantI); err != nil {
				return err
			}
			return checkI32s(r, "chanQ", wantQ)
		},
	}
}

// Trellis builds the Viterbi trellis decoder for a constraint-length-3
// rate-1/2 convolutional code, with full survivor traceback.
func Trellis() Program {
	const nb = 256
	rng := newPRNG(17)
	msg := randInts(rng, nb, 2)

	// Encode with generators G0=7 (111), G1=5 (101); 2-bit state.
	r0 := make([]int32, nb)
	r1 := make([]int32, nb)
	st := int32(0)
	parity := func(x int32) int32 { x ^= x >> 2; x ^= x >> 1; return x & 1 }
	for t := 0; t < nb; t++ {
		full := (st << 1) | msg[t]
		r0[t] = parity(full & 7)
		r1[t] = parity(full & 5)
		st = full & 3
	}
	// Expected symbols per (prev state, input bit).
	exp0 := make([]int32, 8)
	exp1 := make([]int32, 8)
	for p := int32(0); p < 4; p++ {
		for b := int32(0); b < 2; b++ {
			full := (p << 1) | b
			exp0[p*2+b] = parity(full & 7)
			exp1[p*2+b] = parity(full & 5)
		}
	}

	// Go reference Viterbi (noise-free channel decodes exactly). The
	// branch metrics for all eight (state, input) transitions are
	// computed once per symbol, then the add-compare-select sweep runs.
	const inf = 1 << 20
	pm := []int32{0, inf, inf, inf}
	pmn := make([]int32, 4)
	bm := make([]int32, 8)
	surv := make([]int32, nb*4)
	for t := 0; t < nb; t++ {
		for j := 0; j < 8; j++ {
			bm[j] = (r0[t] ^ exp0[j]) + (r1[t] ^ exp1[j])
		}
		for s := int32(0); s < 4; s++ {
			p0 := s >> 1
			p1 := p0 + 2
			b := s & 1
			m0 := pm[p0] + bm[p0*2+b]
			m1 := pm[p1] + bm[p1*2+b]
			if m0 <= m1 {
				pmn[s] = m0
				surv[t*4+int(s)] = p0
			} else {
				pmn[s] = m1
				surv[t*4+int(s)] = p1
			}
		}
		copy(pm, pmn)
	}
	best := int32(0)
	for s := int32(1); s < 4; s++ {
		if pm[s] < pm[best] {
			best = s
		}
	}
	wantDec := make([]int32, nb)
	cur := best
	for t := nb - 1; t >= 0; t-- {
		wantDec[t] = cur & 1
		cur = surv[t*4+int(cur)]
	}

	var sb strings.Builder
	sb.WriteString(intsDecl("r0", r0))
	sb.WriteString(intsDecl("r1", r1))
	sb.WriteString(intsDecl("exp0", exp0))
	sb.WriteString(intsDecl("exp1", exp1))
	fmt.Fprintf(&sb, "int pm[4] = {0, %d, %d, %d};\n", inf, inf, inf)
	fmt.Fprintf(&sb, "int pmn[4];\nint bm[8];\nint surv[%d][4];\nint dec[%d];\n", nb, nb)
	fmt.Fprintf(&sb, `
void main() {
	int t;
	int s;
	int j;
	for (t = 0; t < %[1]d; t++) {
		int c0 = r0[t];
		int c1 = r1[t];
		for (j = 0; j < 8; j++) {
			bm[j] = (c0 ^ exp0[j]) + (c1 ^ exp1[j]);
		}
		for (s = 0; s < 4; s++) {
			int p0 = s >> 1;
			int p1 = p0 + 2;
			int b = s & 1;
			int m0 = pm[p0] + bm[p0*2 + b];
			int m1 = pm[p1] + bm[p1*2 + b];
			if (m0 <= m1) {
				pmn[s] = m0;
				surv[t][s] = p0;
			} else {
				pmn[s] = m1;
				surv[t][s] = p1;
			}
		}
		for (s = 0; s < 4; s++) {
			pm[s] = pmn[s];
		}
	}
	int best = 0;
	for (s = 1; s < 4; s++) {
		if (pm[s] < pm[best]) best = s;
	}
	int cur = best;
	for (t = %[1]d - 1; t >= 0; t--) {
		dec[t] = cur & 1;
		cur = surv[t][cur];
	}
}
`, nb)

	return Program{
		Name:   "trellis",
		Desc:   "Trellis (Viterbi) decoder for a K=3 rate-1/2 convolutional code",
		Kind:   Application,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkI32s(r, "dec", wantDec) },
	}
}
