package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dualbank/internal/encode"
	"dualbank/internal/pipeline"
)

const smokeSource = `
int x[4] = {1, 2, 3, 4};
int y[4] = {10, 20, 30, 40};
int z[4];
void main() {
	int i;
	for (i = 0; i < 4; i++) {
		z[i] = x[i] + y[i];
	}
}
`

func TestRunSimulatesAndPrints(t *testing.T) {
	src := filepath.Join(t.TempDir(), "add.c")
	if err := os.WriteFile(src, []byte(smokeSource), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"single", "cb", "dup", "ideal", "loworder"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-mode", mode, "-print", "z:4", src}, strings.NewReader(""), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("mode %s: exit %d, stderr: %s", mode, code, stderr.String())
		}
		out := stdout.String()
		if !strings.Contains(out, "cycles=") {
			t.Errorf("mode %s: no cycle report: %q", mode, out)
		}
		if !strings.Contains(out, "z[0:4] = 11 22 33 44") {
			t.Errorf("mode %s: wrong z dump: %q", mode, out)
		}
	}
}

// TestRunEngines checks that every engine flag value produces the same
// cycle report and output dump.
func TestRunEngines(t *testing.T) {
	src := filepath.Join(t.TempDir(), "add.c")
	if err := os.WriteFile(src, []byte(smokeSource), 0o644); err != nil {
		t.Fatal(err)
	}
	var want string
	for _, engine := range []string{"machine", "fast", "compiled"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-engine", engine, "-print", "z:4", src}, strings.NewReader(""), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("engine %s: exit %d, stderr: %s", engine, code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "z[0:4] = 11 22 33 44") {
			t.Errorf("engine %s: wrong z dump: %q", engine, stdout.String())
		}
		if want == "" {
			want = stdout.String()
		} else if stdout.String() != want {
			t.Errorf("engine %s output diverges:\n got %q\nwant %q", engine, stdout.String(), want)
		}
	}
}

func TestRunFromStdinWithTrace(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trace", "-"}, strings.NewReader(smokeSource), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "main b") {
		t.Errorf("no trace lines: %q", stdout.String())
	}
}

// TestRunROMImage checks the dspcc -o / dspsim -image contract: a
// decoded ROM image must simulate to the same answer as source.
func TestRunROMImage(t *testing.T) {
	c, err := pipeline.Compile(smokeSource, "add", pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := encode.Encode(c.Sched)
	if err != nil {
		t.Fatal(err)
	}
	rom := filepath.Join(t.TempDir(), "add.rom")
	if err := os.WriteFile(rom, img, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-image", "-print", "z:4", rom}, strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "z[0:4] = 11 22 33 44") {
		t.Errorf("wrong z dump from image: %q", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mode", "bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("unknown mode: exit %d, want 2", code)
	}
	if code := run(nil, strings.NewReader("int main("), &stdout, &stderr); code != 1 {
		t.Errorf("syntax error: exit %d, want 1", code)
	}
	if code := run([]string{"-image", "-"}, strings.NewReader("not a rom"), &stdout, &stderr); code != 1 {
		t.Errorf("bad image: exit %d, want 1", code)
	}
	if code := run([]string{"-engine", "bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("unknown engine: exit %d, want 2", code)
	}
	if code := run([]string{"-trace", "-engine", "fast", "-"}, strings.NewReader(smokeSource), &stdout, &stderr); code != 2 {
		t.Errorf("trace with non-machine engine: exit %d, want 2", code)
	}
}
