package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dualbank/internal/bench"
	"dualbank/internal/explore"
	"dualbank/internal/explore/store"
	"dualbank/internal/serve"
)

// exploreServer boots a server configured for exploration tests.
func exploreServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postExplore(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/explore: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// waitDone polls the status endpoint until the job leaves "running".
func waitDone(t *testing.T, url, id string) serve.ExploreStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := get(t, url+"/v1/explore/"+id)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var st serve.ExploreStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status body: %v", err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExploreEndToEnd submits a job, polls it to completion, fetches
// the frontier, and checks it matches a direct engine run.
func TestExploreEndToEnd(t *testing.T) {
	_, ts := exploreServer(t, serve.Config{Workers: 4})

	code, body := postExplore(t, ts.URL, `{"benchmarks":["fir_32_1"],"budget":30}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st serve.ExploreStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != "running" && st.State != "done" {
		t.Fatalf("submit status: %+v", st)
	}

	// The frontier endpoint answers 409 while the job runs and 200
	// once it is done.
	final := waitDone(t, ts.URL, st.ID)
	if final.State != "done" {
		t.Fatalf("job finished %q: %s", final.State, final.Error)
	}
	if final.Done == 0 || final.Planned == 0 {
		t.Errorf("no progress counters: %+v", final)
	}
	if final.FrontierURL == "" {
		t.Fatal("done job has no frontier_url")
	}
	code, body = get(t, ts.URL+final.FrontierURL)
	if code != http.StatusOK {
		t.Fatalf("frontier: %d %s", code, body)
	}
	var rep explore.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}

	p, _ := bench.ByName("fir_32_1")
	direct, err := explore.Explore(context.Background(), []bench.Program{p}, explore.Options{Budget: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || len(rep.Benchmarks[0].Frontier) != len(direct.Benchmarks[0].Frontier) {
		t.Fatalf("served frontier differs from direct run:\nserved: %+v\ndirect: %+v",
			rep.Benchmarks, direct.Benchmarks)
	}
	for i, got := range rep.Benchmarks[0].Frontier {
		want := direct.Benchmarks[0].Frontier[i]
		if got.Config != want.Config || got.Cycles != want.Cycles || got.Cost != want.Cost {
			t.Errorf("frontier[%d]: served %+v, direct %+v", i, got, want)
		}
	}

	// The exploration's traffic shows up in the metrics exposition.
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		`dspservd_explore_jobs_total{event="submitted"} 1`,
		`dspservd_explore_jobs_total{event="done"} 1`,
		"dspservd_explore_evals_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestExploreValidation covers the submit endpoint's error paths.
func TestExploreValidation(t *testing.T) {
	_, ts := exploreServer(t, serve.Config{Workers: 1})
	cases := []struct {
		body string
		code int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"benchmarks":[]}`, http.StatusBadRequest},
		{`{"benchmarks":["nope"]}`, http.StatusNotFound},
		{`{"benchmarks":["fir_32_1"],"bogus":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, body := postExplore(t, ts.URL, tc.body); code != tc.code {
			t.Errorf("%s: status %d (want %d): %s", tc.body, code, tc.code, body)
		}
	}
	if code, body := get(t, ts.URL+"/v1/explore/explore-999"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/explore/explore-999/frontier"); code != http.StatusNotFound {
		t.Errorf("unknown job frontier: %d %s", code, body)
	}
}

// TestExploreCheckpointResume submits the same exploration twice with
// a store; the second job must replay checkpoints instead of
// re-simulating.
func TestExploreCheckpointResume(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := exploreServer(t, serve.Config{Workers: 2, ExploreStore: st})

	submit := func() serve.ExploreStatus {
		code, body := postExplore(t, ts.URL, `{"benchmarks":["fir_32_1"],"budget":25}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", code, body)
		}
		var s0 serve.ExploreStatus
		if err := json.Unmarshal(body, &s0); err != nil {
			t.Fatal(err)
		}
		return waitDone(t, ts.URL, s0.ID)
	}
	first := submit()
	if first.State != "done" {
		t.Fatalf("first job: %+v", first)
	}
	if st.Len() == 0 {
		t.Fatal("no checkpoints written")
	}
	second := submit()
	if second.State != "done" {
		t.Fatalf("second job: %+v", second)
	}
	code, body := get(t, ts.URL+second.FrontierURL)
	if code != http.StatusOK {
		t.Fatalf("frontier: %d %s", code, body)
	}
	var rep explore.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.StoreHits == 0 {
		t.Errorf("second job replayed nothing: %+v", rep)
	}
}

// TestExploreCloseCancelsJobs pins the drain contract: Close cancels
// running exploration jobs and returns without waiting for them to
// finish naturally.
func TestExploreCloseCancelsJobs(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1, MaxExploreBudget: 5000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A wide job on one worker will still be running when Close fires.
	names := make([]string, 0, 8)
	for _, p := range bench.Kernels()[:8] {
		names = append(names, fmt.Sprintf("%q", p.Name))
	}
	code, body := postExplore(t, ts.URL,
		`{"benchmarks":[`+strings.Join(names, ",")+`],"budget":2000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st serve.ExploreStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not cancel the running exploration")
	}
	if got := s.Metrics().Snapshot(); got.InFlight != 0 {
		t.Errorf("in-flight gauge %d after Close", got.InFlight)
	}
}
