package bench

import (
	"fmt"
	"strings"
)

// This file implements the three G721 ADPCM codec benchmarks: two
// encoder implementations in different styles plus a decoder, standing
// in for the paper's "various implementations of the CCITT G.721
// speech encoder". The codec keeps its adaptive-predictor state in
// locals (register-resident), and every sample is one long serial
// integer dependence chain — normalisation loops, threshold chains,
// sign-sign adaptation — so, as in the paper, not even dual-ported
// memory improves these programs.
//
// The "ML" variants use the machine multiplier for the 2-pole/6-zero
// predictor; the "WF" variant is the multiplier-less implementation
// style (shift-add products via a helper function), common on early
// fixed-point hardware.

// g721State is the Go reference implementation.
type g721State struct {
	sr1, sr2                     int32
	a1, a2                       int32
	b1, b2, b3, b4, b5, b6       int32
	dq1, dq2, dq3, dq4, dq5, dq6 int32
	yl                           int32
}

func newG721() *g721State { return &g721State{yl: 2048} }

var g721WI = []int32{-12, 18, 41, 64, 112, 198, 355, 1122}
var g721IQL = []int32{57, 135, 213, 273, 323, 373, 425, 491}

// step runs one sample through the codec. For encoding, x is the input
// sample and the returned code/reconstruction are produced from it;
// for decoding, code4 is the 4-bit codeword and x is ignored.
func (g *g721State) step(x int32, code4 int32, decode bool) (code int32, sr int32) {
	sez := (g.b1*g.dq1 + g.b2*g.dq2 + g.b3*g.dq3 + g.b4*g.dq4 + g.b5*g.dq5 + g.b6*g.dq6) >> 14
	se := sez + ((g.a1*g.sr1 + g.a2*g.sr2) >> 14)
	y := g.yl >> 6

	var sign, c int32
	if decode {
		c = code4 & 7
		sign = (code4 >> 3) & 1
	} else {
		d := x - se
		sign = 0
		ad := d
		if d < 0 {
			sign = 1
			ad = -d
		}
		exp, m := int32(0), ad
		for m >= 2 {
			m >>= 1
			exp++
		}
		var mant int32
		if exp > 7 {
			mant = (ad >> uint(exp-7)) & 127
		} else {
			mant = (ad << uint(7-exp)) & 127
		}
		dln := exp*128 + mant - y
		c = 0
		if dln >= 80 {
			c = 1
		}
		if dln >= 178 {
			c = 2
		}
		if dln >= 246 {
			c = 3
		}
		if dln >= 300 {
			c = 4
		}
		if dln >= 349 {
			c = 5
		}
		if dln >= 400 {
			c = 6
		}
		if dln >= 460 {
			c = 7
		}
	}

	// Inverse quantizer.
	dql := g721IQL[c] + y
	dex := dql >> 7
	dmant := (dql & 127) | 128
	dqv := (dmant << uint(dex&31)) >> 7
	if sign == 1 {
		dqv = -dqv
	}

	// Scale-factor adaptation.
	g.yl += g721WI[c] - (g.yl >> 6)
	if g.yl < 128 {
		g.yl = 128
	}
	if g.yl > 131072 {
		g.yl = 131072
	}

	// Sign-sign predictor adaptation.
	adj := func(cur, other, step, lim int32) int32 {
		t := step
		if (dqv ^ other) < 0 {
			t = -step
		}
		cur += t
		if cur > lim {
			cur = lim
		}
		if cur < -lim {
			cur = -lim
		}
		return cur
	}
	g.b1 = adj(g.b1, g.dq1, 3, 2048)
	g.b2 = adj(g.b2, g.dq2, 3, 2048)
	g.b3 = adj(g.b3, g.dq3, 3, 2048)
	g.b4 = adj(g.b4, g.dq4, 3, 2048)
	g.b5 = adj(g.b5, g.dq5, 3, 2048)
	g.b6 = adj(g.b6, g.dq6, 3, 2048)
	g.a1 = adj(g.a1, g.sr1, 12, 12288)
	g.a2 = adj(g.a2, g.sr2, 6, 8192)

	sr = se + dqv
	if sr > 32767 {
		sr = 32767
	}
	if sr < -32768 {
		sr = -32768
	}
	g.sr2, g.sr1 = g.sr1, sr
	g.dq6, g.dq5, g.dq4, g.dq3, g.dq2, g.dq1 = g.dq5, g.dq4, g.dq3, g.dq2, g.dq1, dqv

	return c | (sign << 3), sr
}

// g721Input builds the deterministic test waveform.
func g721Input(n int) []int32 {
	rng := newPRNG(2021)
	pcm := make([]int32, n)
	v := int32(0)
	for i := range pcm {
		v += rng.i32n(900) - 450
		if v > 20000 {
			v = 20000
		}
		if v < -20000 {
			v = -20000
		}
		pcm[i] = v
	}
	return pcm
}

// g721Predictor emits the 2-pole/6-zero signal-estimate computation.
// The ML style uses the machine multiplier; the WF style expands each
// product into an inline shift-add loop (multiplier-less), one long
// serial chain per product.
func g721Predictor(shiftAdd bool) string {
	pairs := [][2]string{
		{"b1", "dq1"}, {"b2", "dq2"}, {"b3", "dq3"},
		{"b4", "dq4"}, {"b5", "dq5"}, {"b6", "dq6"},
		{"a1", "sr1"}, {"a2", "sr2"},
	}
	if !shiftAdd {
		p := func(i int) string {
			return fmt.Sprintf("(%s * %s)", pairs[i][0], pairs[i][1])
		}
		return fmt.Sprintf(`		int sez = (%s + %s + %s + %s + %s + %s) >> 14;
		int se = sez + ((%s + %s) >> 14);`,
			p(0), p(1), p(2), p(3), p(4), p(5), p(6), p(7))
	}
	var sb strings.Builder
	for i, pr := range pairs {
		fmt.Fprintf(&sb, `		int p%[1]d;
		{
			int sg = 0;
			int mb = %[3]s;
			if (mb < 0) {
				sg = 1;
				mb = -mb;
			}
			int ac = 0;
			int sh = 0;
			while (mb != 0) {
				if (mb & 1) {
					ac += %[2]s << sh;
				}
				mb = mb >> 1;
				sh = sh + 1;
			}
			if (sg) ac = -ac;
			p%[1]d = ac;
		}
`, i+1, pr[0], pr[1])
	}
	sb.WriteString(`		int sez = (p1 + p2 + p3 + p4 + p5 + p6) >> 14;
		int se = sez + ((p7 + p8) >> 14);`)
	return sb.String()
}

const g721EncodeFront = `		int d = x - se;
		int sign = 0;
		int ad = d;
		if (d < 0) {
			sign = 1;
			ad = -d;
		}
		int exp = 0;
		int m = ad;
		while (m >= 2) {
			m = m >> 1;
			exp = exp + 1;
		}
		int mant;
		if (exp > 7) {
			mant = (ad >> (exp - 7)) & 127;
		} else {
			mant = (ad << (7 - exp)) & 127;
		}
		int dln = exp * 128 + mant - y;
		int c = 0;
		if (dln >= 80) c = 1;
		if (dln >= 178) c = 2;
		if (dln >= 246) c = 3;
		if (dln >= 300) c = 4;
		if (dln >= 349) c = 5;
		if (dln >= 400) c = 6;
		if (dln >= 460) c = 7;`

const g721Back = `		int dql = iql[c] + y;
		int dex = dql >> 7;
		int dmant = (dql & 127) | 128;
		int dqv = (dmant << (dex & 31)) >> 7;
		if (sign == 1) dqv = -dqv;

		yl += wi[c] - (yl >> 6);
		if (yl < 128) yl = 128;
		if (yl > 131072) yl = 131072;

		int t;
		t = 3; if ((dqv ^ dq1) < 0) t = -3;
		b1 += t; if (b1 > 2048) b1 = 2048; if (b1 < -2048) b1 = -2048;
		t = 3; if ((dqv ^ dq2) < 0) t = -3;
		b2 += t; if (b2 > 2048) b2 = 2048; if (b2 < -2048) b2 = -2048;
		t = 3; if ((dqv ^ dq3) < 0) t = -3;
		b3 += t; if (b3 > 2048) b3 = 2048; if (b3 < -2048) b3 = -2048;
		t = 3; if ((dqv ^ dq4) < 0) t = -3;
		b4 += t; if (b4 > 2048) b4 = 2048; if (b4 < -2048) b4 = -2048;
		t = 3; if ((dqv ^ dq5) < 0) t = -3;
		b5 += t; if (b5 > 2048) b5 = 2048; if (b5 < -2048) b5 = -2048;
		t = 3; if ((dqv ^ dq6) < 0) t = -3;
		b6 += t; if (b6 > 2048) b6 = 2048; if (b6 < -2048) b6 = -2048;
		t = 12; if ((dqv ^ sr1) < 0) t = -12;
		a1 += t; if (a1 > 12288) a1 = 12288; if (a1 < -12288) a1 = -12288;
		t = 6; if ((dqv ^ sr2) < 0) t = -6;
		a2 += t; if (a2 > 8192) a2 = 8192; if (a2 < -8192) a2 = -8192;

		int sr = se + dqv;
		if (sr > 32767) sr = 32767;
		if (sr < -32768) sr = -32768;
		sr2 = sr1;
		sr1 = sr;
		dq6 = dq5;
		dq5 = dq4;
		dq4 = dq3;
		dq3 = dq2;
		dq2 = dq1;
		dq1 = dqv;`

const g721Locals = `	int sr1 = 0;
	int sr2 = 0;
	int a1 = 0;
	int a2 = 0;
	int b1 = 0;
	int b2 = 0;
	int b3 = 0;
	int b4 = 0;
	int b5 = 0;
	int b6 = 0;
	int dq1 = 0;
	int dq2 = 0;
	int dq3 = 0;
	int dq4 = 0;
	int dq5 = 0;
	int dq6 = 0;
	int yl = 2048;`

// g721EncodeProgram builds an encoder benchmark with the given
// predictor-product style.
func g721EncodeProgram(name string, shiftAdd bool) Program {
	const n = 256
	pcm := g721Input(n)
	g := newG721()
	want := make([]int32, n)
	for i, x := range pcm {
		want[i], _ = g.step(x, 0, false)
	}

	var sb strings.Builder
	sb.WriteString(intsDecl("pcm", pcm))
	sb.WriteString(intsDecl("wi", g721WI))
	sb.WriteString(intsDecl("iql", g721IQL))
	fmt.Fprintf(&sb, "int code[%d];\n", n)
	fmt.Fprintf(&sb, "\nvoid main() {\n%s\n\tint i;\n\tfor (i = 0; i < %d; i++) {\n\t\tint x = pcm[i];\n\t\tint y = yl >> 6;\n%s\n%s\n%s\n\t\tcode[i] = c | (sign << 3);\n\t}\n}\n",
		g721Locals, n, g721Predictor(shiftAdd), g721EncodeFront, g721Back)

	return Program{
		Name:   name,
		Desc:   "CCITT G.721-style ADPCM speech encoder (" + map[bool]string{false: "multiplier", true: "shift-add"}[shiftAdd] + " predictor)",
		Kind:   Application,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkI32s(r, "code", want) },
	}
}

// G721MLEncode is the multiplier-based encoder.
func G721MLEncode() Program {
	return g721EncodeProgram("G721MLencode", false)
}

// G721WFEncode is the multiplier-less (shift-add) encoder.
func G721WFEncode() Program {
	return g721EncodeProgram("G721WFencode", true)
}

// G721MLDecode is the multiplier-based decoder, fed the reference
// encoder's bitstream.
func G721MLDecode() Program {
	const n = 256
	pcm := g721Input(n)
	enc := newG721()
	codes := make([]int32, n)
	for i, x := range pcm {
		codes[i], _ = enc.step(x, 0, false)
	}
	dec := newG721()
	want := make([]int32, n)
	for i := range codes {
		_, want[i] = dec.step(0, codes[i], true)
	}

	var sb strings.Builder
	sb.WriteString(intsDecl("code", codes))
	sb.WriteString(intsDecl("wi", g721WI))
	sb.WriteString(intsDecl("iql", g721IQL))
	fmt.Fprintf(&sb, "int outp[%d];\n", n)
	fmt.Fprintf(&sb,
		"\nvoid main() {\n%s\n\tint i;\n\tfor (i = 0; i < %d; i++) {\n\t\tint y = yl >> 6;\n%s\n\t\tint cw = code[i];\n\t\tint c = cw & 7;\n\t\tint sign = (cw >> 3) & 1;\n%s\n\t\toutp[i] = sr1;\n\t}\n}\n",
		g721Locals, n, g721Predictor(false), g721Back)

	return Program{
		Name:   "G721MLdecode",
		Desc:   "CCITT G.721-style ADPCM speech decoder (multiplier predictor)",
		Kind:   Application,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkI32s(r, "outp", want) },
	}
}
