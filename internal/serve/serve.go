package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dualbank/internal/bench"
	"dualbank/internal/explore/store"
	"dualbank/internal/faultinject"
	"dualbank/internal/pipeline"
)

// Config sizes a Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// Workers bounds concurrent compile+simulate jobs (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds accepted-but-unstarted jobs (default 2×Workers).
	QueueDepth int
	// DefaultTimeout applies to requests that set no timeout_ms
	// (default 10s); MaxTimeout clamps requested timeouts (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSourceBytes caps the source field of a request (default 1 MiB);
	// the request body itself is capped slightly above it.
	MaxSourceBytes int
	// ExploreStore, when non-nil, checkpoints /v1/explore evaluations
	// and resumes submitted explorations from it.
	ExploreStore *store.Store
	// MaxExploreBudget clamps a submitted exploration's per-benchmark
	// evaluation budget (default 500).
	MaxExploreBudget int
	// AdmitTimeout bounds how long a request may wait for an admission
	// (queue) slot before being shed with 429. Zero keeps the legacy
	// behavior: requests wait out their whole deadline.
	AdmitTimeout time.Duration
	// RatePerSec and RateBurst configure the per-client token-bucket
	// rate limiter. RatePerSec <= 0 disables it; RateBurst defaults
	// to max(1, ceil(RatePerSec)).
	RatePerSec float64
	RateBurst  int
	// Fault, when non-nil, injects compute errors and execution delays
	// (latency spikes, pool-slot starvation) into every measurement —
	// the chaos-testing seam. Production servers leave it nil.
	Fault *faultinject.Injector
	// Engine selects the simulation engine for every measurement. The
	// zero value is the compiled threaded-code engine — the production
	// default; the fast and reference engines remain selectable for
	// cross-checking a deployment. A request carrying an explicit
	// "engine" field overrides it per measurement.
	Engine bench.Engine
	// ResultCache, when non-nil, is the shared L2 result cache behind
	// the in-memory memo cache: consulted on every local miss, written
	// through on every computed success. The cluster tier points every
	// node's server at one content-addressed store here.
	ResultCache bench.ResultCache
	// OnDrain, when non-nil, runs exactly once when BeginDrain first
	// flips readiness — before any in-flight work is cancelled. The
	// cluster tier uses it to announce this node's departure to its
	// peers so the ring stops routing here while the node finishes its
	// in-flight requests.
	OnDrain func()
}

// StatusClientClosedRequest is the non-standard 499 (nginx convention)
// counted when the client abandons a request mid-measurement; it never
// reaches the client — nobody is listening — but keeps the status
// accounting exhaustive: every request ends in exactly one code.
const StatusClientClosedRequest = 499

// Server is the dspservd HTTP service: a mux, a worker pool, a
// single-flight memo cache for named-benchmark results, and a metrics
// registry.
//
//	POST /v1/run                   compile and simulate one benchmark or source
//	POST /v1/explore               submit an async design-space exploration
//	GET  /v1/explore/{id}          exploration job status
//	GET  /v1/explore/{id}/frontier completed exploration's Pareto report
//	GET  /v1/benchmarks            list benchmarks, modes, and partitioners
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness (503 once draining)
//	GET  /metrics                  Prometheus text exposition
//	     /debug/pprof/             the standard profiling endpoints
type Server struct {
	cfg      Config
	harness  *bench.Harness
	pool     *Pool
	metrics  *Metrics
	mux      *http.ServeMux
	limiter  *rateLimiter
	draining atomic.Bool

	// Exploration jobs run in the background, outside the HTTP
	// handlers: jobsCtx parents every job (Close cancels it), jobsWG
	// tracks their goroutines, jobs is the id → job registry.
	jobsCtx    context.Context
	jobsCancel context.CancelFunc
	jobsWG     sync.WaitGroup
	jobsMu     sync.Mutex
	jobs       map[string]*exploreJob
	jobSeq     atomic.Int64
}

// New builds a ready-to-serve Server; callers must Close it to stop
// the worker pool.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 1 << 20
	}
	if cfg.MaxExploreBudget <= 0 {
		cfg.MaxExploreBudget = 500
	}
	s := &Server{
		cfg: cfg,
		// The harness's pool stays unused (the serve pool bounds
		// concurrency); it contributes the single-flight cache.
		harness: bench.NewHarness(1),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		jobs:    make(map[string]*exploreJob),
	}
	s.harness.L2 = cfg.ResultCache
	if cfg.RatePerSec > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(cfg.RatePerSec + 0.999)
		}
		s.limiter = newRateLimiter(cfg.RatePerSec, burst)
	}
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())
	s.pool = NewPool(cfg.Workers, cfg.QueueDepth, s.execute)

	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/explore", s.handleExploreSubmit)
	s.mux.HandleFunc("GET /v1/explore/{id}", s.handleExploreStatus)
	s.mux.HandleFunc("GET /v1/explore/{id}/frontier", s.handleExploreFrontier)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's mux for mounting on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the worker pool for occupancy checks.
func (s *Server) Pool() *Pool { return s.pool }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats reports the memo cache's traffic.
func (s *Server) CacheStats() bench.CacheStats { return s.harness.Stats() }

// BeginDrain flips /readyz unready so load balancers stop routing new
// work here; in-flight and newly arriving requests still complete.
// Call it when shutdown begins, before http.Server.Shutdown drains the
// handlers. On the first call only, the OnDrain hook fires after
// readiness flips — departure is announced while every in-flight
// request is still running, never after cancellation has begun.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) && s.cfg.OnDrain != nil {
		s.cfg.OnDrain()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the server's background work: exploration jobs are
// cancelled and waited for (their completed evaluations are already
// checkpointed — the store is write-through), then the worker pool is
// closed, cancelling in-flight measurements. Call it after
// http.Server.Shutdown has drained the handlers.
func (s *Server) Close() {
	s.jobsCancel()
	s.jobsWG.Wait()
	s.pool.Close()
}

// execute is the pool's RunFunc: named benchmarks flow through the
// single-flight memo cache, source jobs compile and simulate afresh.
// With a fault injector configured, every execution first pays the
// injected delay (a latency spike, or a starvation burst that pins
// this worker's slot) and may be vetoed with a transient compute
// error; the memo cache never retains those (they carry Transient()),
// so a faulted measurement is retried, not replayed.
func (s *Server) execute(ctx context.Context, cc *pipeline.Compiler, j Job) (bench.Result, bool, error) {
	if inj := s.cfg.Fault; inj != nil {
		if d := inj.ExecDelay(); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return bench.Result{}, false, ctx.Err()
			}
		}
		if err := inj.Compute(j.Prog.Name); err != nil {
			return bench.Result{}, false, err
		}
	}
	ro := bench.RunOptions{
		Compiler: cc, Partitioner: j.Method,
		FMPasses: j.FMPasses, Profiled: j.Profiled, DupOnly: j.DupOnly,
		Banks: j.Banks, Ports: j.Ports,
		Engine: s.engineFor(j),
	}
	s.metrics.EngineRun(ro.Engine.String())
	if j.Cacheable {
		return s.harness.RunCtx(ctx, j.Prog, j.Mode, ro)
	}
	res, err := bench.RunCtx(ctx, j.Prog, j.Mode, ro)
	return res, false, err
}

// engineFor resolves a job's effective simulation engine: its own
// pinned engine when the request carried one, the server's configured
// engine otherwise.
func (s *Server) engineFor(j Job) bench.Engine {
	if j.EngineSet {
		return j.Engine
	}
	return s.cfg.Engine
}

// HasCached reports whether this server could answer the job from its
// own in-memory memo cache — a completed successful entry or an
// in-flight computation the job would coalesce onto — without fresh
// work. The cluster tier's replica probe; source jobs are never
// cached.
func (s *Server) HasCached(j Job) bool {
	if !j.Cacheable {
		return false
	}
	return s.harness.Cached(j.Prog, j.Mode, bench.RunOptions{
		Partitioner: j.Method,
		FMPasses:    j.FMPasses, Profiled: j.Profiled, DupOnly: j.DupOnly,
		Banks: j.Banks, Ports: j.Ports,
		Engine: s.engineFor(j),
	})
}

// handleRun is POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	done := s.metrics.RequestStart()
	defer done()

	if s.limiter != nil && !s.limiter.allow(clientKey(r.RemoteAddr)) {
		s.metrics.Shed("rate")
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, errors.New("client rate limit exceeded"))
		return
	}

	// The body cap leaves headroom over the source cap for the JSON
	// framing and escaping around it.
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)*2+4096))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	job, err := DecodeRequest(data, s.cfg.MaxSourceBytes)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrUnknownBench) {
			code = http.StatusNotFound
		}
		s.fail(w, code, err)
		return
	}

	timeout := job.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var res bench.Result
	var cached bool
	if s.cfg.AdmitTimeout > 0 {
		res, cached, err = s.pool.DoTimeout(ctx, job, s.cfg.AdmitTimeout)
	} else {
		res, cached, err = s.pool.Do(ctx, job)
	}
	if err != nil {
		if errors.Is(err, ErrShed) {
			s.metrics.Shed("queue")
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.AdmitTimeout))
		}
		s.fail(w, statusFor(err), err)
		return
	}
	s.metrics.ObserveRun(res.CompileSeconds, res.SimSeconds)
	s.reply(w, http.StatusOK, ResponseFor(res, job.Method, cached))
}

// retryAfterSeconds suggests a backoff of at least one second, scaled
// to the admission window the request already waited out.
func retryAfterSeconds(admit time.Duration) string {
	secs := int(admit / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// statusFor maps an execution error to its HTTP status — the serve
// layer's exhaustive failure taxonomy:
//
//	408  the server-enforced deadline fired mid-measurement
//	429  bounded admission shed the request (queue full)
//	499  the client went away; nobody is listening for the reply
//	500  an injected (or otherwise transient) internal fault
//	503  the pool is shutting down — retry elsewhere
//	422  the request's own fault: compile error, failed output check
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	case errors.Is(err, ErrStopped):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case isTransientErr(err):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// isTransientErr reports whether err carries the Transient() bool
// marker (injected faults do) anywhere in its chain.
func isTransientErr(err error) bool {
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// benchmarksResponse is the body of GET /v1/benchmarks.
type benchmarksResponse struct {
	Benchmarks   []benchmarkInfo `json:"benchmarks"`
	Modes        []string        `json:"modes"`
	Partitioners []string        `json:"partitioners"`
}

type benchmarkInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Desc string `json:"desc"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	resp := benchmarksResponse{
		Modes:        Modes(),
		Partitioners: []string{"greedy", "kl", "anneal", "fm", "exact"},
	}
	for _, p := range append(bench.Kernels(), bench.Applications()...) {
		resp.Benchmarks = append(resp.Benchmarks, benchmarkInfo{
			Name: p.Name, Kind: p.Kind.String(), Desc: p.Desc,
		})
	}
	s.reply(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
	s.metrics.RequestDone(http.StatusOK)
}

// handleReadyz is the load balancer's routing signal: 200 while the
// server accepts new work, 503 once BeginDrain has been called.
// Liveness (/healthz) stays 200 throughout a drain — the process is
// healthy, just leaving.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		s.metrics.RequestDone(http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
	s.metrics.RequestDone(http.StatusOK)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.metrics.WriteTo(w, s.harness.Stats(), s.pool.Active(), s.pool.Workers())
}

// reply writes a JSON response and counts it.
func (s *Server) reply(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
	s.metrics.RequestDone(code)
}

// fail writes a JSON error response and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.reply(w, code, ErrorResponse{Error: err.Error()})
}
