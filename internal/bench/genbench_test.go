package bench

import (
	"fmt"
	"testing"

	"dualbank/internal/alloc"
)

// TestByNameResolvesGenerated: canonical generated keys resolve through
// ByName, run end to end under CB with a passing output check, and hit
// the harness memo cache like any suite benchmark.
func TestByNameResolvesGenerated(t *testing.T) {
	p, ok := ByName("gen_window_12")
	if !ok {
		t.Fatal("ByName rejected canonical generated key gen_window_12")
	}
	if p.Name != "gen_window_12" || p.Check == nil {
		t.Fatalf("malformed generated program: %+v", p.Name)
	}
	again, ok := ByName("gen_window_12")
	if !ok || again.Source != p.Source {
		t.Fatal("second resolution differs — memo broken")
	}

	h := NewHarness(1)
	if _, err := h.Run(p, alloc.CB); err != nil {
		t.Fatalf("generated benchmark failed under CB: %v", err)
	}
	if _, err := h.Run(p, alloc.CB); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("generated key did not memo-cache: %+v", s)
	}
}

// TestByNameRejectsNonCanonical: near-miss names fall through to a
// plain miss, not a generated program.
func TestByNameRejectsNonCanonical(t *testing.T) {
	for _, name := range []string{"gen_window_012", "gen_cube_5", "gen_window", "fir_9999_1"} {
		if _, ok := ByName(name); ok {
			t.Errorf("ByName accepted non-canonical name %q", name)
		}
	}
}

// TestGeneratedCacheBounded: sweeping more keys than the cache bound
// neither grows the memo without limit nor breaks resolution.
func TestGeneratedCacheBounded(t *testing.T) {
	for seed := uint64(0); seed < genCacheMax+40; seed++ {
		p, ok := ByName(fmt.Sprintf("gen_pair_%d", seed))
		if !ok || p.Check == nil {
			t.Fatalf("seed %d failed to resolve", seed)
		}
	}
	generated.mu.Lock()
	n := len(generated.progs)
	generated.mu.Unlock()
	if n > genCacheMax {
		t.Errorf("generated memo grew to %d entries (bound %d)", n, genCacheMax)
	}
}
