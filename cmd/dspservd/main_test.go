package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the test read stdout while run() is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunLifecycle boots the daemon on an ephemeral port, makes one
// request, and shuts it down with the signal a process manager would
// send, asserting a clean exit.
func TestRunLifecycle(t *testing.T) {
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &stdout, &stderr) }()

	// The listen line carries the kernel-chosen port.
	re := regexp.MustCompile(`listening on ([0-9.]+:[0-9]+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/run", "application/json",
		strings.NewReader(`{"bench":"fir_32_1","mode":"CB"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run request: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
	if !strings.Contains(stdout.String(), "shutting down") {
		t.Errorf("no shutdown announcement: %q", stdout.String())
	}
}

// TestRunExploreDrain boots the daemon with a checkpoint store,
// submits an exploration wide enough to outlive the test, and sends
// SIGTERM while it runs: the daemon must exit 0 (the job is cancelled,
// not awaited) and the store must hold the evaluations completed
// before the signal, ready for a resumed run.
func TestRunExploreDrain(t *testing.T) {
	ckpt := t.TempDir()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-explore-store", ckpt}, &stdout, &stderr)
	}()

	re := regexp.MustCompile(`listening on ([0-9.]+:[0-9]+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post("http://"+addr+"/v1/explore", "application/json",
		strings.NewReader(`{"benchmarks":["fft_1024","fir_256_64","iir_4_64","latnrm_32_64"],"budget":500}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explore submit: %d %s", resp.StatusCode, body)
	}

	// Let at least one evaluation checkpoint before the signal.
	for deadline := time.Now().Add(20 * time.Second); ; {
		files, err := os.ReadDir(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint files appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down with an exploration in flight")
	}

	files, err := os.ReadDir(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("checkpoints vanished across shutdown")
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &stdout, &stderr); code != 1 {
		t.Errorf("unlistenable address: exit %d, want 1", code)
	}
}
