// Command dspsim compiles a MiniC program and executes it on the
// dual-bank VLIW instruction-set simulator, reporting the cycle count
// and, optionally, the contents of named global arrays.
//
// Usage:
//
//	dspsim [-mode cb|...] [-print global[:n]] file.c
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/compact"
	"dualbank/internal/encode"
	"dualbank/internal/ir"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

var modeNames = map[string]alloc.Mode{
	"single":   alloc.SingleBank,
	"cb":       alloc.CB,
	"pr":       alloc.CBProfiled,
	"dup":      alloc.CBDup,
	"fulldup":  alloc.FullDup,
	"ideal":    alloc.Ideal,
	"loworder": alloc.LowOrder,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, so the smoke
// tests can drive the whole simulator driver in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "cb", "data allocation mode: single, cb, pr, dup, fulldup, ideal, loworder")
	print := fs.String("print", "", "comma-separated globals to dump after the run (name or name:count)")
	image := fs.Bool("image", false, "the input is a binary ROM image produced by dspcc -o")
	trace := fs.Bool("trace", false, "print one line per retired long instruction (requires -engine machine)")
	engine := fs.String("engine", "compiled", "simulation engine: compiled, fast, or machine")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m, ok := modeNames[*mode]
	if !ok {
		fmt.Fprintf(stderr, "dspsim: unknown mode %q\n", *mode)
		return 2
	}
	eng, err := bench.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "dspsim:", err)
		return 2
	}
	// Only the reference interpreter traces, so -trace implies -engine
	// machine; an explicit conflicting engine is an error rather than a
	// silently ignored flag.
	if *trace && eng != bench.EngineMachine {
		engineSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "engine" {
				engineSet = true
			}
		})
		if engineSet {
			fmt.Fprintf(stderr, "dspsim: -trace requires -engine machine (the %s engine does not trace)\n", eng)
			return 2
		}
		eng = bench.EngineMachine
	}
	var data []byte
	name := "stdin"
	if fs.NArg() == 0 || fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		name = fs.Arg(0)
		data, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintln(stderr, "dspsim:", err)
		return 1
	}

	var sched *compact.Program
	var globals []*ir.Symbol
	if *image {
		sched, err = encode.Decode(data)
		if err != nil {
			fmt.Fprintln(stderr, "dspsim:", err)
			return 1
		}
		globals = sched.Src.Globals
	} else {
		c, err := pipeline.Compile(string(data), name, pipeline.Options{Mode: m})
		if err != nil {
			fmt.Fprintln(stderr, "dspsim:", err)
			return 1
		}
		sched = c.Sched
		globals = c.IR.Globals
	}

	// The three engines are pinned to identical counters and memory
	// images by the differential suite; the switch picks dispatch
	// machinery only. simMachine is the read-back surface the report
	// and -print need.
	type simMachine interface {
		Run() error
		Counters() sim.Counters
		Int32(sym *ir.Symbol, idx int) (int32, error)
		Float32(sym *ir.Symbol, idx int) (float32, error)
	}
	var mach simMachine
	switch eng {
	case bench.EngineMachine:
		m := sim.NewMachine(sched)
		if *trace {
			m.Trace = stdout
		}
		mach = m
	case bench.EngineFast:
		pd, err := sim.Predecode(sched)
		if err != nil {
			fmt.Fprintln(stderr, "dspsim:", err)
			return 1
		}
		mach = pd.NewMachine()
	default:
		cp, err := sim.Compile(sched)
		if err != nil {
			fmt.Fprintln(stderr, "dspsim:", err)
			return 1
		}
		mach = cp.NewMachine()
	}
	if err := mach.Run(); err != nil {
		fmt.Fprintln(stderr, "dspsim:", err)
		return 1
	}
	ctr := mach.Counters()
	fmt.Fprintf(stdout, "ports=%-11s cycles=%d ops=%d instrs=%d dualmem=%d conflicts=%d\n",
		sched.Ports, ctr.Cycles, ctr.OpsExecuted, sched.StaticInstrs(),
		ctr.DualMemCycles, ctr.BankConflicts)

	if *print == "" {
		return 0
	}
	byName := func(n string) *ir.Symbol {
		for _, g := range globals {
			if g.Name == n {
				return g
			}
		}
		return nil
	}
	for _, spec := range strings.Split(*print, ",") {
		gname, count := spec, 8
		if i := strings.IndexByte(spec, ':'); i >= 0 {
			gname = spec[:i]
			if n, err := strconv.Atoi(spec[i+1:]); err == nil {
				count = n
			}
		}
		g := byName(gname)
		if g == nil {
			fmt.Fprintf(stderr, "dspsim: no global %q\n", gname)
			continue
		}
		if count > g.Size {
			count = g.Size
		}
		fmt.Fprintf(stdout, "%s[0:%d] =", gname, count)
		for i := 0; i < count; i++ {
			if g.Elem == ir.TFloat {
				v, _ := mach.Float32(g, i)
				fmt.Fprintf(stdout, " %g", v)
			} else {
				v, _ := mach.Int32(g, i)
				fmt.Fprintf(stdout, " %d", v)
			}
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
