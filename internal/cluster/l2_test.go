package cluster_test

import (
	"reflect"
	"testing"

	"dualbank/internal/bench"
	"dualbank/internal/cluster"
	"dualbank/internal/explore/store"
)

// TestStoreCacheRoundTrip: a result published through the cache comes
// back field-for-field (timings deliberately excluded), is namespaced
// away from raw explorer keys in the same store, and is visible to a
// second store handle over the same directory — the cross-node path.
func TestStoreCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.NewStoreCache(s)

	key := "run|fir_32_1|mode=Dup|part=fm|fmp=0|prof=false|dup=|engine=compiled|cfg"
	in := bench.Result{
		Bench:          "fir_32_1",
		Cycles:         1234,
		DupStores:      3,
		Duplicated:     []string{"x", "h"},
		CompileSeconds: 0.5,
		SimSeconds:     0.25,
	}
	in.Mem.XData = 10
	in.Mem.YData = 11
	in.Mem.Stack = 12
	in.Mem.Instr = 13
	c.Put(key, in)

	out, ok := c.Get(key)
	if !ok {
		t.Fatal("published result not found")
	}
	want := in
	want.Bench = "" // the harness restores identity fields itself
	want.CompileSeconds, want.SimSeconds = 0, 0
	if !reflect.DeepEqual(out, want) {
		t.Errorf("round trip:\ngot  %+v\nwant %+v", out, want)
	}

	// The record lives under the l2 namespace, not the raw key: an
	// explorer checkpoint under the same raw key cannot collide.
	if _, ok := s.Get(key); ok {
		t.Error("L2 record stored under the raw key — namespace collision with explorer checkpoints")
	}
	if _, ok := s.Get("l2run|" + key); !ok {
		t.Error("L2 record absent from the l2run| namespace")
	}

	// A second handle over the same directory — another node — sees the
	// record via the disk fall-through.
	peer, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cluster.NewStoreCache(peer).Get(key); !ok {
		t.Error("peer store handle cannot see the published result")
	}

	// Records the explorer marked infeasible never serve as results.
	s.Put("l2run|bad", store.Record{Err: "infeasible"})
	if _, ok := c.Get("bad"); ok {
		t.Error("infeasible record served as a cached result")
	}
	if _, ok := c.Get("never-written"); ok {
		t.Error("phantom hit for an unwritten key")
	}
}
