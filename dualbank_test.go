package dualbank_test

import (
	"strings"
	"testing"

	"dualbank"
)

const facadeSrc = `
float A[16] = {1.0, 2.0};
float B[16] = {0.5};
float sum;
void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < 16; i++) {
		s += A[i] * B[i];
	}
	sum = s;
}
`

func TestFacadeCompileAndRun(t *testing.T) {
	c, err := dualbank.Compile(facadeSrc, "fir", dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Float32(c.Global("sum"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("sum = %g, want 0.5", got)
	}
	if m.Cycles <= 0 {
		t.Fatal("no cycles counted")
	}
}

func TestFacadeAssembly(t *testing.T) {
	c, err := dualbank.Compile(facadeSrc, "fir", dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		t.Fatal(err)
	}
	out := dualbank.Assembly(c)
	for _, want := range []string{"main:", "MU0:", "MU1:"} {
		if !strings.Contains(out, want) {
			t.Errorf("assembly missing %q", want)
		}
	}
}

func TestFacadeModesDiffer(t *testing.T) {
	cycles := map[dualbank.Mode]int64{}
	for _, mode := range []dualbank.Mode{
		dualbank.SingleBank, dualbank.CB, dualbank.Profiled,
		dualbank.Duplication, dualbank.FullDuplication,
		dualbank.Ideal, dualbank.LowOrder,
	} {
		c, err := dualbank.Compile(facadeSrc, "fir", dualbank.Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		m, err := c.Run()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		cycles[mode] = m.Cycles
	}
	if cycles[dualbank.CB] >= cycles[dualbank.SingleBank] {
		t.Errorf("CB (%d) not faster than single-bank (%d)",
			cycles[dualbank.CB], cycles[dualbank.SingleBank])
	}
	if cycles[dualbank.Ideal] > cycles[dualbank.CB] {
		t.Errorf("Ideal (%d) slower than CB (%d)", cycles[dualbank.Ideal], cycles[dualbank.CB])
	}
}

func TestFacadeAblationOptions(t *testing.T) {
	full, err := dualbank.Compile(facadeSrc, "fir", dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		t.Fatal(err)
	}
	crippled, err := dualbank.Compile(facadeSrc, "fir", dualbank.Options{
		Mode:                  dualbank.CB,
		DisableMACFusion:      true,
		DisableLoopShaping:    true,
		DisableStrengthReduce: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := crippled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mc.Cycles <= mf.Cycles {
		t.Errorf("disabling optimizations did not cost cycles (%d vs %d)", mc.Cycles, mf.Cycles)
	}
	// Results must be identical either way.
	a, _ := mf.Float32(full.Global("sum"), 0)
	b, _ := mc.Float32(crippled.Global("sum"), 0)
	if a != b {
		t.Errorf("ablation changed the result: %g vs %g", a, b)
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := dualbank.Compile("int x = ;", "bad", dualbank.Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := dualbank.Compile("int x;", "nomain", dualbank.Options{}); err == nil {
		t.Fatal("program without main accepted")
	}
}
