package compact_test

import (
	"testing"

	"dualbank/internal/compact"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// buildBlock assembles a one-block physical-form function from ops.
func buildBlock(ops ...*ir.Op) (*ir.Program, *ir.Func) {
	f := ir.NewFunc("main", ir.TVoid)
	f.SetPhysRegTable()
	b := f.NewBlock()
	b.Ops = ops
	p := &ir.Program{Name: "unit"}
	p.AddFunc(f)
	return p, f
}

func scheduleOne(t *testing.T, p *ir.Program, ports machine.PortModel) *compact.Block {
	t.Helper()
	sched, err := compact.Schedule(p, compact.Config{Ports: ports})
	if err != nil {
		t.Fatal(err)
	}
	if err := compact.Validate(sched); err != nil {
		t.Fatal(err)
	}
	return sched.Funcs["main"].Blocks[0]
}

func cycleOf(b *compact.Block, op *ir.Op) int {
	for c, in := range b.Instrs {
		for _, o := range in.Slots {
			if o == op {
				return c
			}
		}
	}
	return -1
}

// TestIndependentOpsPack: four independent integer ops fit one
// instruction (four scalar units).
func TestIndependentOpsPack(t *testing.T) {
	r := func(n int) ir.Reg { return ir.PhysInt(n) }
	ops := []*ir.Op{
		{Kind: ir.OpConst, Type: ir.TInt, Dst: r(2), Imm: 1},
		{Kind: ir.OpConst, Type: ir.TInt, Dst: r(3), Imm: 2},
		{Kind: ir.OpConst, Type: ir.TInt, Dst: r(4), Imm: 3},
		{Kind: ir.OpConst, Type: ir.TInt, Dst: r(5), Imm: 4},
		{Kind: ir.OpRet},
	}
	p, _ := buildBlock(ops...)
	b := scheduleOne(t, p, machine.PortsBanked)
	if len(b.Instrs) != 1 {
		t.Fatalf("got %d instructions, want 1 (4 scalar units + PCU)", len(b.Instrs))
	}
}

// TestFifthIntegerOpSpills: a fifth independent integer op overflows
// the four scalar units into a second instruction.
func TestFifthIntegerOpSpillsToNextCycle(t *testing.T) {
	r := func(n int) ir.Reg { return ir.PhysInt(n) }
	var ops []*ir.Op
	for i := 0; i < 5; i++ {
		ops = append(ops, &ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r(2 + i), Imm: int64(i)})
	}
	ops = append(ops, &ir.Op{Kind: ir.OpRet})
	p, _ := buildBlock(ops...)
	b := scheduleOne(t, p, machine.PortsBanked)
	if len(b.Instrs) != 2 {
		t.Fatalf("got %d instructions, want 2", len(b.Instrs))
	}
}

// TestAntiDependentSharesCycle: a read and a subsequent redefinition of
// the same register may share an instruction (read-before-write).
func TestAntiDependentSharesCycle(t *testing.T) {
	r := func(n int) ir.Reg { return ir.PhysInt(n) }
	def := &ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r(2), Imm: 1}
	use := &ir.Op{Kind: ir.OpAdd, Type: ir.TInt, Dst: r(3), Args: [2]ir.Reg{r(2), r(2)}}
	redef := &ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r(2), Imm: 9}
	p, _ := buildBlock(def, use, redef, &ir.Op{Kind: ir.OpRet})
	b := scheduleOne(t, p, machine.PortsBanked)
	if cycleOf(b, use) != cycleOf(b, redef) {
		t.Fatalf("anti-dependent ops in cycles %d and %d, want shared",
			cycleOf(b, use), cycleOf(b, redef))
	}
	if cycleOf(b, def) >= cycleOf(b, use) {
		t.Fatal("flow dependence violated")
	}
}

// TestPriorityPicksLongChainFirst: with one free slot, the op heading
// the longer dependence chain schedules first.
func TestPriorityPicksLongChainFirst(t *testing.T) {
	r := func(n int) ir.Reg { return ir.PhysInt(n) }
	sym := &ir.Symbol{Name: "a", Elem: ir.TInt, Size: 4, Bank: machine.BankX}
	// Chain A: load -> add -> add (3 long). Chain B: lone load.
	idx := &ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r(9)}
	la := &ir.Op{Kind: ir.OpLoad, Type: ir.TInt, Dst: r(2), Sym: sym, Idx: r(9), Bank: machine.BankX}
	a1 := &ir.Op{Kind: ir.OpAdd, Type: ir.TInt, Dst: r(3), Args: [2]ir.Reg{r(2), r(2)}}
	a2 := &ir.Op{Kind: ir.OpAdd, Type: ir.TInt, Dst: r(4), Args: [2]ir.Reg{r(3), r(3)}}
	lb := &ir.Op{Kind: ir.OpLoad, Type: ir.TInt, Dst: r(5), Sym: sym, Idx: r(9), Bank: machine.BankX}
	p, _ := buildBlock(idx, lb, la, a1, a2, &ir.Op{Kind: ir.OpRet})
	b := scheduleOne(t, p, machine.PortsBanked)
	// Both loads target bank X (one port): the chain-heading load must
	// win the first memory slot despite appearing second in program
	// order.
	if cycleOf(b, la) >= cycleOf(b, lb) {
		t.Fatalf("high-priority load in cycle %d, low-priority in %d",
			cycleOf(b, la), cycleOf(b, lb))
	}
}

// TestTerminatorPacksWithFinalOps: the return shares the final
// instruction (weak dependence only).
func TestTerminatorPacksWithFinalOps(t *testing.T) {
	r := func(n int) ir.Reg { return ir.PhysInt(n) }
	c1 := &ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r(2), Imm: 1}
	ret := &ir.Op{Kind: ir.OpRet}
	p, _ := buildBlock(c1, ret)
	b := scheduleOne(t, p, machine.PortsBanked)
	if len(b.Instrs) != 1 {
		t.Fatalf("got %d instructions, want 1 (ret packs with the const)", len(b.Instrs))
	}
}

// TestBankBoundLoadWaits: two X-bank loads serialise on MU0 under the
// banked model but share a cycle when dual-ported.
func TestBankBoundLoadWaits(t *testing.T) {
	r := func(n int) ir.Reg { return ir.PhysInt(n) }
	sym := &ir.Symbol{Name: "a", Elem: ir.TInt, Size: 4, Bank: machine.BankX}
	idx := &ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r(9)}
	l1 := &ir.Op{Kind: ir.OpLoad, Type: ir.TInt, Dst: r(2), Sym: sym, Idx: r(9), Bank: machine.BankX}
	l2 := &ir.Op{Kind: ir.OpLoad, Type: ir.TInt, Dst: r(3), Sym: sym, Idx: r(9), Bank: machine.BankX}

	p, _ := buildBlock(idx, l1, l2, &ir.Op{Kind: ir.OpRet})
	banked := scheduleOne(t, p, machine.PortsBanked)
	if cycleOf(banked, l1) == cycleOf(banked, l2) {
		t.Fatal("two X-bank loads shared MU0")
	}

	p2, _ := buildBlock(
		&ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r(9)},
		&ir.Op{Kind: ir.OpLoad, Type: ir.TInt, Dst: r(2), Sym: sym, Idx: r(9), Bank: machine.BankX},
		&ir.Op{Kind: ir.OpLoad, Type: ir.TInt, Dst: r(3), Sym: sym, Idx: r(9), Bank: machine.BankX},
		&ir.Op{Kind: ir.OpRet},
	)
	dual := scheduleOne(t, p2, machine.PortsDualPorted)
	if dual.Instrs[0] == nil || len(dual.Instrs) >= len(banked.Instrs) {
		t.Fatalf("dual-ported (%d instrs) not tighter than banked (%d)",
			len(dual.Instrs), len(banked.Instrs))
	}
}
