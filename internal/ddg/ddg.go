// Package ddg builds the per-basic-block data-dependence graph used by
// the interference-graph construction pass (Figure 3 of the paper) and
// by the operation-compaction pass. Edges are typed: a *strict* edge
// forces the successor into a strictly later long instruction, while a
// *weak* edge (an anti-dependence) allows both operations to share one
// long instruction, because within an instruction all operands are read
// before any result is written. This is exactly the "data-compatible"
// distinction the paper's scheduler makes.
package ddg

import (
	"math/bits"

	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// Edge is a dependence from one operation to another within a block.
type Edge struct {
	// To is the index of the dependent operation in Graph.Ops.
	To int
	// Strict reports whether the dependent operation must issue in a
	// strictly later instruction (flow and output dependences). A
	// non-strict edge is an anti-dependence: same instruction is fine.
	Strict bool
}

// Graph is the data-dependence graph of one basic block.
type Graph struct {
	Ops  []*ir.Op
	Succ [][]Edge
	Pred [][]Edge
	// Priority[i] is the number of descendants of op i in the graph,
	// the heuristic the paper uses to order the data-ready set.
	Priority []int
}

// Build constructs the dependence graph for block b.
func Build(b *ir.Block) *Graph {
	n := len(b.Ops)
	g := &Graph{
		Ops:      b.Ops,
		Succ:     make([][]Edge, n),
		Pred:     make([][]Edge, n),
		Priority: make([]int, n),
	}

	addEdge := func(from, to int, strict bool) {
		if from == to {
			return
		}
		// Keep the strictest variant of a duplicate edge.
		for k := range g.Succ[from] {
			if g.Succ[from][k].To == to {
				if strict && !g.Succ[from][k].Strict {
					g.Succ[from][k].Strict = true
					for j := range g.Pred[to] {
						if edgeFrom(g.Pred[to][j], from) {
							g.Pred[to][j].Strict = true
						}
					}
				}
				return
			}
		}
		g.Succ[from] = append(g.Succ[from], Edge{To: to, Strict: strict})
		g.Pred[to] = append(g.Pred[to], Edge{To: from, Strict: strict})
	}

	lastDef := make(map[ir.Reg]int)     // reg -> op index of latest def
	usesSince := make(map[ir.Reg][]int) // reads since that def
	type memEvent struct {
		idx     int
		isStore bool
		bank    machine.Bank
	}
	memHist := make(map[*ir.Symbol][]memEvent)
	lastCall := -1
	var memOps []int // memory ops since the last call

	var useBuf []ir.Reg
	for i, op := range b.Ops {
		// Register flow dependences.
		useBuf = op.Uses(useBuf[:0])
		for _, u := range useBuf {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i, true)
			}
			usesSince[u] = append(usesSince[u], i)
		}
		// Register anti- and output dependences.
		if d := op.Dst; d != ir.NoReg {
			for _, u := range usesSince[d] {
				addEdge(u, i, false)
			}
			if p, ok := lastDef[d]; ok {
				addEdge(p, i, true)
			}
			lastDef[d] = i
			usesSince[d] = usesSince[d][:0]
		}

		switch op.Kind {
		case ir.OpLoad:
			for _, ev := range memHist[op.Sym] {
				if ev.isStore && banksConflict(ev.bank, op.Bank) {
					addEdge(ev.idx, i, true) // memory flow
				}
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, true)
			}
			memHist[op.Sym] = append(memHist[op.Sym], memEvent{i, false, op.Bank})
			memOps = append(memOps, i)
		case ir.OpStore:
			for _, ev := range memHist[op.Sym] {
				if !banksConflict(ev.bank, op.Bank) {
					continue
				}
				if ev.isStore {
					addEdge(ev.idx, i, true) // memory output
				} else {
					addEdge(ev.idx, i, false) // memory anti
				}
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, true)
			}
			memHist[op.Sym] = append(memHist[op.Sym], memEvent{i, true, op.Bank})
			memOps = append(memOps, i)
		case ir.OpCall:
			// Calls are memory barriers: every earlier memory op must
			// complete no later than the call (weak: a store may share
			// the call's instruction because memory writes commit before
			// control transfers), and later memory ops wait for the
			// return.
			for _, m := range memOps {
				addEdge(m, i, false)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, true)
			}
			lastCall = i
			memOps = memOps[:0]
		}

		// The terminator must issue in the block's final instruction:
		// give it a weak edge from every other operation.
		if op.Kind.IsTerminator() {
			for j := 0; j < i; j++ {
				addEdge(j, i, false)
			}
		}
	}

	g.computePriorities()
	return g
}

func edgeFrom(e Edge, from int) bool { return e.To == from }

// banksConflict reports whether two accesses to the same symbol may
// touch the same memory location. After the allocation pass, the two
// halves of a duplicated-store pair carry distinct single-bank tags and
// so do not conflict — this is what lets the coherence store issue in
// parallel with the original. Untagged accesses (before allocation, or
// duplicated loads tagged BankBoth) conflict conservatively.
func banksConflict(a, b machine.Bank) bool {
	if a == machine.BankX && b == machine.BankY {
		return false
	}
	if a == machine.BankY && b == machine.BankX {
		return false
	}
	return true
}

// computePriorities sets Priority[i] to the number of distinct
// descendants of i, the paper's scheduling priority.
func (g *Graph) computePriorities() {
	n := len(g.Ops)
	// Process in reverse topological order (ops are in program order,
	// and all edges point forward), accumulating descendant bitsets.
	words := (n + 63) / 64
	sets := make([][]uint64, n)
	buf := make([]uint64, n*words)
	for i := range sets {
		sets[i] = buf[i*words : (i+1)*words]
	}
	for i := n - 1; i >= 0; i-- {
		s := sets[i]
		for _, e := range g.Succ[i] {
			s[e.To/64] |= 1 << (uint(e.To) % 64)
			for w, v := range sets[e.To] {
				s[w] |= v
			}
		}
		count := 0
		for _, v := range s {
			count += bits.OnesCount64(v)
		}
		g.Priority[i] = count
	}
}
