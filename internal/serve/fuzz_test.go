package serve

import (
	"strings"
	"testing"

	"dualbank/internal/bench"
)

// FuzzDecodeRequest hammers the request decoder with arbitrary bytes.
// The decoder is the service's entire parse surface — everything past
// it runs on validated input — so the invariants are strict: it must
// never panic, and whenever it accepts a body the resulting Job must be
// internally consistent (a runnable program, a bounded source, a
// non-negative timeout, and a known mode).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"bench":"fir_32_1"}`))
	f.Add([]byte(`{"bench":"fft_1024","mode":"Dup","partitioner":"fm","timeout_ms":500}`))
	f.Add([]byte(`{"source":"void main() {}","mode":"CB"}`))
	f.Add([]byte(`{"bench":"fir_32_1","mode":"zig"}`))
	f.Add([]byte(`{"bench":"nope"}`))
	f.Add([]byte(`{"bench":`))
	f.Add([]byte(`{"bench":"fir_32_1"}{"bench":"fir_32_1"}`))
	f.Add([]byte(`{"bench":"fir_32_1","timeout_ms":-1}`))
	f.Add([]byte(`{"bench":"fir_32_1","engine":"machine"}`))
	f.Add([]byte(`{"bench":"fir_32_1","engine":"fast","mode":"Dup"}`))
	f.Add([]byte(`{"bench":"fir_32_1","engine":"turbo"}`))
	f.Add([]byte(`{"source":"void main() {}","engine":"compiled"}`))
	f.Add([]byte(`{"bonch":"fir_32_1"}`))
	f.Add([]byte(`{"source":"` + strings.Repeat("x", 200) + `"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	const maxSource = 128 // small cap so the fuzzer can reach the oversize path
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeRequest(data, maxSource)
		if err != nil {
			return
		}
		if j.Prog.Source == "" {
			t.Fatalf("accepted job with no source: %q", data)
		}
		if !j.Cacheable && len(j.Prog.Source) > maxSource {
			t.Fatalf("accepted oversized source (%d bytes): %q", len(j.Prog.Source), data)
		}
		if j.Cacheable {
			if _, ok := bench.ByName(j.Prog.Name); !ok {
				t.Fatalf("cacheable job names unknown benchmark %q: %q", j.Prog.Name, data)
			}
		}
		if j.Timeout < 0 {
			t.Fatalf("accepted negative timeout %v: %q", j.Timeout, data)
		}
		if _, err := ParseMode(j.Mode.String()); err != nil {
			t.Fatalf("accepted job with unnamed mode %v: %q", j.Mode, data)
		}
	})
}
