package bench

import (
	"sort"
	"sync"

	"dualbank/internal/genmc"
)

// Generated-benchmark resolution: any canonical "gen_<archetype>_<seed>"
// name denotes a program the genmc generator can rebuild on demand, so
// ByName resolves the whole generated key space the same way it
// resolves the hand-written suite. A generated Program carries a Check
// built from the generator's evaluator, so harness runs over generated
// keys validate outputs exactly like suite runs do — and because the
// program is a pure function of its name, generated keys flow through
// the memo cache, the cluster routing ring, and the shared L2
// unchanged.

// genCacheMax bounds the memo of materialized generated programs.
// Load generators sweep wide key ranges; regeneration costs well under
// a millisecond, so when the cache fills it is simply dropped rather
// than tracking recency.
const genCacheMax = 1024

var generated struct {
	mu    sync.Mutex
	progs map[string]Program
}

// generatedByName materializes the program a canonical generated name
// denotes, memoized under generated.mu.
func generatedByName(name string) (Program, bool) {
	k, ok := genmc.ParseName(name)
	if !ok {
		return Program{}, false
	}
	generated.mu.Lock()
	defer generated.mu.Unlock()
	if p, ok := generated.progs[name]; ok {
		return p, true
	}
	gp := genmc.Generate(k)
	p := Program{
		Name:   gp.Name,
		Desc:   gp.Desc,
		Kind:   Kernel,
		Source: gp.Source,
		Check:  genCheck(gp.Out),
	}
	if generated.progs == nil || len(generated.progs) >= genCacheMax {
		generated.progs = make(map[string]Program, 64)
	}
	generated.progs[name] = p
	return p, true
}

// genCheck builds a Check comparing every global array against the
// generator's expected image, in deterministic name order.
func genCheck(out map[string][]int32) func(Reader) error {
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	return func(r Reader) error {
		for _, name := range names {
			if err := checkI32s(r, name, out[name]); err != nil {
				return err
			}
		}
		return nil
	}
}
