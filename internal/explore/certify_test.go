package explore

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"dualbank/internal/bench"
	"dualbank/internal/exact"
)

// certSuite is a fast representative slice of the suite: a zero-cost
// kernel, a positive-cost kernel, and the application whose graph is
// large enough to engage the spectral ordering and a non-trivial
// branch-and-bound.
var certSuite = []string{"fir_32_1", "iir_1_1", "G721WFencode"}

func certProgs(t *testing.T) []bench.Program {
	t.Helper()
	var progs []bench.Program
	for _, n := range certSuite {
		p, ok := bench.ByName(n)
		if !ok {
			t.Fatalf("unknown benchmark %q", n)
		}
		progs = append(progs, p)
	}
	return progs
}

func TestCertifyReport(t *testing.T) {
	rep, err := Certify(context.Background(), certProgs(t), CertifyOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != len(certSuite) {
		t.Fatalf("got %d benchmarks, want %d", len(rep.Benchmarks), len(certSuite))
	}
	for i, bc := range rep.Benchmarks {
		if bc.Bench != certSuite[i] {
			t.Fatalf("benchmark %d is %q, want %q (input order must be preserved)", i, bc.Bench, certSuite[i])
		}
		if len(bc.Arms) != 3 || bc.Arms[0].Arm != "greedy" || bc.Arms[1].Arm != "fm" || bc.Arms[2].Arm != "anneal" {
			t.Fatalf("%s: arms malformed: %+v", bc.Bench, bc.Arms)
		}
		for _, a := range bc.Arms {
			if a.Cost < bc.Cert.Upper {
				t.Errorf("%s: %s cost %d below exact %d", bc.Bench, a.Arm, a.Cost, bc.Cert.Upper)
			}
			if a.Cost < bc.Cert.Lower {
				t.Errorf("%s: %s cost %d below proven lower bound %d", bc.Bench, a.Arm, a.Cost, bc.Cert.Lower)
			}
		}
	}
	// The three verdicts on this slice are known: every graph closes.
	if rep.Optimal != 3 || rep.Bounded != 0 || rep.Exhausted != 0 {
		t.Errorf("verdict tally %d/%d/%d, want 3 optimal", rep.Optimal, rep.Bounded, rep.Exhausted)
	}
	// iir_1_1's proven optimum is 12 (pinned by the brute-force
	// differential in internal/exact).
	if got := rep.Benchmarks[1].Cert; got.Upper != 12 || got.Lower != 12 {
		t.Errorf("iir_1_1 certified [%d, %d], want [12, 12]", got.Lower, got.Upper)
	}
}

// TestCertifyDeterministicAcrossWorkers: the committed BENCH_gaps.json
// baseline is only diffable in CI if the report bytes are independent
// of -workers. Run the sweep serially and wide and require identical
// JSON.
func TestCertifyDeterministicAcrossWorkers(t *testing.T) {
	progs := certProgs(t)
	opts := CertifyOptions{NodeBudget: 50_000}
	var reports [][]byte
	for _, w := range []int{1, 8} {
		opts.Workers = w
		rep, err := Certify(context.Background(), progs, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Fatalf("report differs between workers=1 and workers=8:\n%s\nvs\n%s", reports[0], reports[1])
	}
}

func TestCertifyBudgetVerdict(t *testing.T) {
	p, _ := bench.ByName("G721WFencode")
	rep, err := Certify(context.Background(), []bench.Program{p}, CertifyOptions{NodeBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	bc := rep.Benchmarks[0]
	if bc.Cert.Verdict == exact.Optimal {
		t.Fatalf("10-node budget cannot close G721WFencode, got %+v", bc.Cert)
	}
	if bc.Cert.BBNodes > 10 {
		t.Fatalf("expanded %d nodes over budget 10", bc.Cert.BBNodes)
	}
	for _, a := range bc.Arms {
		if a.Cost < bc.Cert.Lower || bc.Cert.Upper > a.Cost {
			t.Errorf("%s arm %d outside bound [%d, %d]", a.Arm, a.Cost, bc.Cert.Lower, bc.Cert.Upper)
		}
	}
}

func TestGapPct(t *testing.T) {
	cases := []struct {
		cost, lower int64
		want        float64
	}{
		{0, 0, 0},   // matched a zero bound
		{12, 12, 0}, // matched a positive bound
		{50, 49, 2.041},
		{386, 171, 125.731},
		{5, 0, -1}, // positive cost, vacuous bound: no percentage
	}
	for _, c := range cases {
		if got := gapPct(c.cost, c.lower); got != c.want {
			t.Errorf("gapPct(%d, %d) = %v, want %v", c.cost, c.lower, got, c.want)
		}
	}
}

func TestCertifyWriteText(t *testing.T) {
	rep, err := Certify(context.Background(), certProgs(t), CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"certified optimality gaps", "iir_1_1", "optimal", "G721WFencode"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}
