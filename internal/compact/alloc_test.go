package compact

import (
	"testing"

	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// allocTestBlock builds a representative basic block: a software-
// pipelined-looking body with loads from both banks, integer and
// float arithmetic, and stores — enough to exercise the scheduler's
// data-ready recomputation and unit placement paths.
func allocTestBlock() (*ir.Func, *ir.Block) {
	f := ir.NewFunc("t", ir.TVoid)
	a := &ir.Symbol{Name: "A", Elem: ir.TFloat, Size: 8, Dims: []int{8}}
	bb := &ir.Symbol{Name: "B", Elem: ir.TFloat, Size: 8, Dims: []int{8}}
	c := &ir.Symbol{Name: "C", Elem: ir.TFloat, Size: 8, Dims: []int{8}}
	blk := f.NewBlock()
	var ops []*ir.Op
	idx := f.NewReg(ir.TInt)
	ops = append(ops, &ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: idx, Imm: 0})
	for i := 0; i < 6; i++ {
		va := f.NewReg(ir.TFloat)
		vb := f.NewReg(ir.TFloat)
		vs := f.NewReg(ir.TFloat)
		vp := f.NewReg(ir.TFloat)
		ops = append(ops,
			&ir.Op{Kind: ir.OpLoad, Type: ir.TFloat, Dst: va, Sym: a, Idx: idx, Bank: machine.BankX},
			&ir.Op{Kind: ir.OpLoad, Type: ir.TFloat, Dst: vb, Sym: bb, Idx: idx, Bank: machine.BankY},
			&ir.Op{Kind: ir.OpFMul, Type: ir.TFloat, Dst: vp, Args: [2]ir.Reg{va, vb}},
			&ir.Op{Kind: ir.OpFAdd, Type: ir.TFloat, Dst: vs, Args: [2]ir.Reg{vp, va}},
			&ir.Op{Kind: ir.OpStore, Type: ir.TFloat, Sym: c, Idx: idx, Args: [2]ir.Reg{vs}, Bank: machine.BankX},
		)
	}
	ops = append(ops, &ir.Op{Kind: ir.OpRet})
	blk.Ops = ops
	return f, blk
}

// TestScheduleBlockZeroAlloc enforces the fast compile path's
// steady-state contract: with a warm Scratch, scheduling a block
// performs zero heap allocations (the sealed output block is built
// separately, by seal).
func TestScheduleBlockZeroAlloc(t *testing.T) {
	_, blk := allocTestBlock()
	s := new(Scratch)
	cfg := Config{Ports: machine.PortsBanked}
	if _, err := s.scheduleBlock(blk, cfg, nil); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.scheduleBlock(blk, cfg, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("scheduleBlock allocates %.1f objects/op with warm scratch, want 0", allocs)
	}
}

// TestScheduleWithMatchesSchedule pins the scratch-reusing entry point
// to the one-shot one: same blocks, same instruction slots.
func TestScheduleWithMatchesSchedule(t *testing.T) {
	f, _ := allocTestBlock()
	p := &ir.Program{Funcs: []*ir.Func{f}}
	for _, ports := range []machine.PortModel{machine.PortsBanked, machine.PortsDualPorted} {
		cfg := Config{Ports: ports}
		one, err := Schedule(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := new(Scratch)
		for round := 0; round < 3; round++ { // reuse across rounds
			two, err := ScheduleWith(p, cfg, s)
			if err != nil {
				t.Fatal(err)
			}
			fa, fb := one.Funcs["t"], two.Funcs["t"]
			if len(fa.Blocks) != len(fb.Blocks) {
				t.Fatalf("block counts differ: %d vs %d", len(fa.Blocks), len(fb.Blocks))
			}
			for bi := range fa.Blocks {
				ia, ib := fa.Blocks[bi].Instrs, fb.Blocks[bi].Instrs
				if len(ia) != len(ib) {
					t.Fatalf("ports=%v block %d: %d instrs vs %d", ports, bi, len(ia), len(ib))
				}
				for ci := range ia {
					if ia[ci].Slots != ib[ci].Slots {
						t.Fatalf("ports=%v block %d cycle %d: slots differ", ports, bi, ci)
					}
				}
			}
		}
	}
}

func BenchmarkScheduleBlock(b *testing.B) {
	_, blk := allocTestBlock()
	s := new(Scratch)
	cfg := Config{Ports: machine.PortsBanked}
	if _, err := s.scheduleBlock(blk, cfg, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.scheduleBlock(blk, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleProgram(b *testing.B) {
	f, _ := allocTestBlock()
	p := &ir.Program{Funcs: []*ir.Func{f}}
	s := new(Scratch)
	cfg := Config{Ports: machine.PortsBanked}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleWith(p, cfg, s); err != nil {
			b.Fatal(err)
		}
	}
}
