// Package encode serialises a scheduled VLIW program into a compact
// binary ROM image and loads such images back into executable form.
// Embedded DSPs ship their programs in on-chip instruction memory
// (§1.1 of the paper discusses sizing systems so code and coefficients
// fit on chip); the image format is the deployment artefact of this
// toolchain: a self-contained object file holding the symbol table
// (with bank assignments, addresses and initial data), the function
// and block structure, and the tightly encoded long instructions.
//
// Loading an image reconstructs a compact.Program that the simulator
// executes exactly like the compiler's in-memory output — the
// round-trip is exercised end-to-end by the tests.
package encode

import (
	"encoding/binary"
	"fmt"
	"math"

	"dualbank/internal/compact"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// Magic identifies image files.
var Magic = [4]byte{'D', 'S', 'P', 'B'}

// Version is the image format version.
const Version = 1

// op field presence flags.
const (
	fDst uint8 = 1 << iota
	fA0
	fA1
	fIdx
	fImm
	fFImm
	fSym
	fAtomic
)

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}
func (w *writer) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) remain() int { return len(r.buf) - r.off }

func (r *reader) u8() (uint8, error) {
	if r.remain() < 1 {
		return 0, fmt.Errorf("encode: truncated image (u8 at %d)", r.off)
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.remain() < 4 {
		return 0, fmt.Errorf("encode: truncated image (u32 at %d)", r.off)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.remain() < 8 {
		return 0, fmt.Errorf("encode: truncated image (u64 at %d)", r.off)
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("encode: bad uvarint at %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("encode: bad varint at %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(r.remain()) < n {
		return "", fmt.Errorf("encode: truncated string at %d", r.off)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Encode serialises a scheduled program.
func Encode(p *compact.Program) ([]byte, error) {
	w := &writer{}
	w.buf = append(w.buf, Magic[:]...)
	w.u8(Version)
	w.u8(uint8(p.Ports))
	w.str(p.Src.Name)

	// Symbol table. Index spans globals then each function's locals, in
	// program order.
	syms := p.Src.Symbols()
	index := make(map[*ir.Symbol]int, len(syms))
	for i, s := range syms {
		index[s] = i
	}
	w.uvarint(uint64(len(p.Src.Globals)))
	w.uvarint(uint64(len(syms)))
	for _, s := range syms {
		w.str(s.Name)
		w.u8(uint8(s.Kind))
		w.u8(uint8(s.Elem))
		w.uvarint(uint64(s.Size))
		w.uvarint(uint64(len(s.Dims)))
		for _, d := range s.Dims {
			w.uvarint(uint64(d))
		}
		flags := uint8(0)
		if s.Duplicated {
			flags |= 1
		}
		if s.ReadOnly {
			flags |= 2
		}
		if s.Save {
			flags |= 4
		}
		w.u8(flags)
		w.u8(uint8(s.Bank))
		w.uvarint(uint64(s.Addr))
		w.uvarint(uint64(len(s.Init)))
		for _, word := range s.Init {
			w.u32(word)
		}
	}

	// Function table.
	funcIndex := make(map[string]int, len(p.Src.Funcs))
	w.uvarint(uint64(len(p.Src.Funcs)))
	for i, f := range p.Src.Funcs {
		funcIndex[f.Name] = i
	}
	for _, f := range p.Src.Funcs {
		sf := p.Funcs[f.Name]
		if sf == nil {
			return nil, fmt.Errorf("encode: function %s not scheduled", f.Name)
		}
		w.str(f.Name)
		w.u8(uint8(f.RetType))
		w.uvarint(uint64(len(f.Params)))
		for _, prm := range f.Params {
			w.uvarint(uint64(index[prm]))
		}
		w.uvarint(uint64(len(f.Locals)))
		for _, l := range f.Locals {
			w.uvarint(uint64(index[l]))
		}
		w.uvarint(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			sb := sf.Blocks[b.ID]
			w.uvarint(uint64(b.LoopDepth))
			w.uvarint(uint64(len(b.Succs)))
			for _, s := range b.Succs {
				w.uvarint(uint64(s.ID))
			}
			w.uvarint(uint64(len(sb.Instrs)))
			for _, in := range sb.Instrs {
				if err := encodeInstr(w, in, index, funcIndex); err != nil {
					return nil, err
				}
			}
		}
	}
	return w.buf, nil
}

func encodeInstr(w *writer, in *compact.Instr, symIndex map[*ir.Symbol]int, funcIndex map[string]int) error {
	mask := uint16(0)
	for u, op := range in.Slots {
		if op != nil {
			mask |= 1 << uint(u)
		}
	}
	w.u8(uint8(mask))
	w.u8(uint8(mask >> 8))
	for u := 0; u < machine.NumUnits; u++ {
		op := in.Slots[u]
		if op == nil {
			continue
		}
		w.u8(uint8(op.Kind))
		var flags uint8
		if op.Dst != ir.NoReg {
			flags |= fDst
		}
		if op.Args[0] != ir.NoReg {
			flags |= fA0
		}
		if op.Args[1] != ir.NoReg {
			flags |= fA1
		}
		if op.Idx != ir.NoReg {
			flags |= fIdx
		}
		if op.Kind == ir.OpConst {
			flags |= fImm
		}
		if op.Kind == ir.OpFConst {
			flags |= fFImm
		}
		if op.Sym != nil {
			flags |= fSym
		}
		if op.Atomic {
			flags |= fAtomic
		}
		w.u8(flags)
		w.u8(uint8(op.Type))
		w.u8(uint8(op.Bank))
		if flags&fDst != 0 {
			w.u8(uint8(op.Dst))
		}
		if flags&fA0 != 0 {
			w.u8(uint8(op.Args[0]))
		}
		if flags&fA1 != 0 {
			w.u8(uint8(op.Args[1]))
		}
		if flags&fIdx != 0 {
			w.u8(uint8(op.Idx))
		}
		if flags&fImm != 0 {
			w.varint(op.Imm)
		}
		if flags&fFImm != 0 {
			w.u64(math.Float64bits(op.FImm))
		}
		if flags&fSym != 0 {
			idx, ok := symIndex[op.Sym]
			if !ok {
				return fmt.Errorf("encode: op references unknown symbol %s", op.Sym)
			}
			w.uvarint(uint64(idx))
		}
		if op.Kind == ir.OpCall {
			fi, ok := funcIndex[op.Callee]
			if !ok {
				return fmt.Errorf("encode: call to unknown function %s", op.Callee)
			}
			w.uvarint(uint64(fi))
		}
	}
	return nil
}

// Decode loads an image back into an executable scheduled program.
func Decode(data []byte) (*compact.Program, error) {
	r := &reader{buf: data}
	if len(data) < 6 || data[0] != Magic[0] || data[1] != Magic[1] ||
		data[2] != Magic[2] || data[3] != Magic[3] {
		return nil, fmt.Errorf("encode: not a DSP image")
	}
	r.off = 4
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("encode: unsupported image version %d", ver)
	}
	ports, err := r.u8()
	if err != nil {
		return nil, err
	}
	name, err := r.str()
	if err != nil {
		return nil, err
	}

	prog := &ir.Program{Name: name}
	nGlobals, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nSyms, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	syms := make([]*ir.Symbol, nSyms)
	for i := range syms {
		s := &ir.Symbol{}
		if s.Name, err = r.str(); err != nil {
			return nil, err
		}
		k, err := r.u8()
		if err != nil {
			return nil, err
		}
		s.Kind = ir.SymKind(k)
		e, err := r.u8()
		if err != nil {
			return nil, err
		}
		s.Elem = ir.Type(e)
		sz, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		s.Size = int(sz)
		nd, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for d := uint64(0); d < nd; d++ {
			dim, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			s.Dims = append(s.Dims, int(dim))
		}
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		s.Duplicated = flags&1 != 0
		s.ReadOnly = flags&2 != 0
		s.Save = flags&4 != 0
		b, err := r.u8()
		if err != nil {
			return nil, err
		}
		s.Bank = machine.Bank(b)
		addr, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		s.Addr = int(addr)
		ni, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if ni > uint64(s.Size) {
			return nil, fmt.Errorf("encode: symbol %s has %d init words for size %d", s.Name, ni, s.Size)
		}
		for wi := uint64(0); wi < ni; wi++ {
			word, err := r.u32()
			if err != nil {
				return nil, err
			}
			s.Init = append(s.Init, word)
		}
		syms[i] = s
	}
	if nGlobals > nSyms {
		return nil, fmt.Errorf("encode: %d globals exceed %d symbols", nGlobals, nSyms)
	}
	prog.Globals = append(prog.Globals, syms[:nGlobals]...)

	nFuncs, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	out := &compact.Program{Src: prog, Funcs: make(map[string]*compact.Func), Ports: machine.PortModel(ports)}
	funcNames := make([]string, 0, nFuncs)

	type pendingCall struct {
		op *ir.Op
		fi int
	}
	var calls []pendingCall

	for fi := uint64(0); fi < nFuncs; fi++ {
		fname, err := r.str()
		if err != nil {
			return nil, err
		}
		funcNames = append(funcNames, fname)
		rt, err := r.u8()
		if err != nil {
			return nil, err
		}
		f := ir.NewFunc(fname, ir.Type(rt))
		f.SetPhysRegTable()
		np, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for pi := uint64(0); pi < np; pi++ {
			si, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if si >= nSyms {
				return nil, fmt.Errorf("encode: param symbol index %d out of range", si)
			}
			f.Params = append(f.Params, syms[si])
		}
		nl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for li := uint64(0); li < nl; li++ {
			si, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if si >= nSyms {
				return nil, fmt.Errorf("encode: local symbol index %d out of range", si)
			}
			f.Locals = append(f.Locals, syms[si])
		}

		nb, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		blocks := make([]*ir.Block, nb)
		for bi := range blocks {
			blocks[bi] = f.NewBlock()
		}
		sf := &compact.Func{Src: f}
		type succFix struct {
			b   *ir.Block
			ids []int
		}
		var fixes []succFix
		for bi := uint64(0); bi < nb; bi++ {
			b := blocks[bi]
			depth, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			b.LoopDepth = int(depth)
			ns, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			fix := succFix{b: b}
			for si := uint64(0); si < ns; si++ {
				id, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if id >= nb {
					return nil, fmt.Errorf("encode: successor %d out of range", id)
				}
				fix.ids = append(fix.ids, int(id))
			}
			fixes = append(fixes, fix)

			ni, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			sb := &compact.Block{Src: b}
			for ii := uint64(0); ii < ni; ii++ {
				in, ops, callRefs, err := decodeInstr(r, syms)
				if err != nil {
					return nil, fmt.Errorf("encode: %s block %d: %w", fname, bi, err)
				}
				b.Ops = append(b.Ops, ops...)
				for _, cr := range callRefs {
					calls = append(calls, pendingCall{op: cr.op, fi: cr.fi})
				}
				sb.Instrs = append(sb.Instrs, in)
			}
			// Within an instruction, ops decode in unit order (PCU
			// first), so the block terminator may not be the final op;
			// restore the terminator-last invariant. Decoded blocks are
			// executed via their instruction list — the op list exists
			// for verification and inspection.
			for i, op := range b.Ops {
				if op.Kind.IsTerminator() && i != len(b.Ops)-1 {
					b.Ops = append(append(b.Ops[:i], b.Ops[i+1:]...), op)
					break
				}
			}
			sf.Blocks = append(sf.Blocks, sb)
		}
		for _, fx := range fixes {
			for _, id := range fx.ids {
				fx.b.Succs = append(fx.b.Succs, blocks[id])
				blocks[id].Preds = append(blocks[id].Preds, fx.b)
			}
		}
		prog.AddFunc(f)
		out.Funcs[fname] = sf
	}
	for _, pc := range calls {
		if pc.fi < 0 || pc.fi >= len(funcNames) {
			return nil, fmt.Errorf("encode: call target %d out of range", pc.fi)
		}
		pc.op.Callee = funcNames[pc.fi]
	}
	if r.remain() != 0 {
		return nil, fmt.Errorf("encode: %d trailing bytes", r.remain())
	}
	if err := ir.Verify(prog); err != nil {
		return nil, fmt.Errorf("encode: decoded program invalid: %w", err)
	}
	return out, nil
}

type callRef struct {
	op *ir.Op
	fi int
}

func decodeInstr(r *reader, syms []*ir.Symbol) (*compact.Instr, []*ir.Op, []callRef, error) {
	lo, err := r.u8()
	if err != nil {
		return nil, nil, nil, err
	}
	hi, err := r.u8()
	if err != nil {
		return nil, nil, nil, err
	}
	mask := uint16(lo) | uint16(hi)<<8
	in := &compact.Instr{}
	var ops []*ir.Op
	var calls []callRef
	for u := 0; u < machine.NumUnits; u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		kind, err := r.u8()
		if err != nil {
			return nil, nil, nil, err
		}
		flags, err := r.u8()
		if err != nil {
			return nil, nil, nil, err
		}
		typ, err := r.u8()
		if err != nil {
			return nil, nil, nil, err
		}
		bank, err := r.u8()
		if err != nil {
			return nil, nil, nil, err
		}
		op := &ir.Op{
			Kind:   ir.OpKind(kind),
			Type:   ir.Type(typ),
			Bank:   machine.Bank(bank),
			Atomic: flags&fAtomic != 0,
		}
		readReg := func() (ir.Reg, error) {
			v, err := r.u8()
			if err != nil {
				return ir.NoReg, err
			}
			if v > 64 {
				return ir.NoReg, fmt.Errorf("register %d out of range", v)
			}
			return ir.Reg(v), nil
		}
		if flags&fDst != 0 {
			if op.Dst, err = readReg(); err != nil {
				return nil, nil, nil, err
			}
		}
		if flags&fA0 != 0 {
			if op.Args[0], err = readReg(); err != nil {
				return nil, nil, nil, err
			}
		}
		if flags&fA1 != 0 {
			if op.Args[1], err = readReg(); err != nil {
				return nil, nil, nil, err
			}
		}
		if flags&fIdx != 0 {
			if op.Idx, err = readReg(); err != nil {
				return nil, nil, nil, err
			}
		}
		if flags&fImm != 0 {
			if op.Imm, err = r.varint(); err != nil {
				return nil, nil, nil, err
			}
		}
		if flags&fFImm != 0 {
			bits, err := r.u64()
			if err != nil {
				return nil, nil, nil, err
			}
			op.FImm = math.Float64frombits(bits)
		}
		if flags&fSym != 0 {
			si, err := r.uvarint()
			if err != nil {
				return nil, nil, nil, err
			}
			if si >= uint64(len(syms)) {
				return nil, nil, nil, fmt.Errorf("symbol index %d out of range", si)
			}
			op.Sym = syms[si]
		}
		if op.Kind == ir.OpCall {
			fi, err := r.uvarint()
			if err != nil {
				return nil, nil, nil, err
			}
			calls = append(calls, callRef{op: op, fi: int(fi)})
		}
		in.Slots[u] = op
		ops = append(ops, op)
	}
	return in, ops, calls, nil
}
