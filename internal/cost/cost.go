// Package cost implements the paper's first-order memory cost model
// (§4.2):
//
//	Cost = X + Y + 2·S + I
//
// where X and Y are the data sizes of the two memory banks in words, S
// is the stack size (reserved symmetrically in both banks, hence the
// factor of two), and I is the instruction-memory size — the paper
// assumes one word per long instruction. From two cost figures the
// package derives the Cost Increase (CI) and, combined with cycle
// counts, the Performance Gain (PG) and Performance/Cost Ratio (PCR)
// reported in Table 3.
package cost

import (
	"dualbank/internal/alloc"
	"dualbank/internal/compact"
)

// Memory is the word-level memory footprint of a compiled program.
type Memory struct {
	// XData and YData are each bank's data size: the duplicated region
	// (present in both banks) plus the bank's private globals.
	XData, YData int
	// Extra are the data sizes of banks beyond the classic X/Y pair,
	// in bank order; empty on the 2-bank machine.
	Extra []int
	// Stack is the static stack reservation S; every bank reserves it.
	Stack int
	// Instr is the instruction-memory size in words (one per long
	// instruction).
	Instr int
	// NBanks is the number of banks reserving the stack; 0 means the
	// classic two, preserving the paper's 2·S term.
	NBanks int
}

// Of computes the footprint from an allocation result and a schedule.
func Of(a *alloc.Result, sched *compact.Program) Memory {
	if a.GlobalBank != nil {
		// k-way allocation: one data term per bank, stack reserved in
		// every bank.
		k := len(a.GlobalBank)
		s := 0
		for _, st := range a.StackBank {
			if st > s {
				s = st
			}
		}
		m := Memory{
			XData:  a.DupWords + a.GlobalBank[0],
			YData:  a.DupWords + a.GlobalBank[1],
			Stack:  s,
			Instr:  sched.StaticInstrs(),
			NBanks: k,
		}
		for b := 2; b < k; b++ {
			m.Extra = append(m.Extra, a.DupWords+a.GlobalBank[b])
		}
		return m
	}
	s := a.StackX
	if a.StackY > s {
		s = a.StackY
	}
	return Memory{
		XData: a.DupWords + a.GlobalX,
		YData: a.DupWords + a.GlobalY,
		Stack: s,
		Instr: sched.StaticInstrs(),
	}
}

// Total evaluates the cost model, generalized to k banks: every bank's
// data plus k·S plus instruction memory (the paper's X + Y + 2·S + I
// on the classic machine).
func (m Memory) Total() int {
	nb := m.NBanks
	if nb < 2 {
		nb = 2
	}
	t := m.XData + m.YData + nb*m.Stack + m.Instr
	for _, e := range m.Extra {
		t += e
	}
	return t
}

// Metrics bundles the Table 3 quantities for one technique relative to
// the unoptimized (single-bank) reference.
type Metrics struct {
	PG  float64 // performance gain: baseCycles / cycles
	CI  float64 // cost increase: cost / baseCost
	PCR float64 // performance/cost ratio: PG / CI
}

// Compare derives PG/CI/PCR for a technique against the baseline.
func Compare(baseCycles, cycles int64, base, mem Memory) Metrics {
	pg := float64(baseCycles) / float64(cycles)
	ci := float64(mem.Total()) / float64(base.Total())
	return Metrics{PG: pg, CI: ci, PCR: pg / ci}
}
